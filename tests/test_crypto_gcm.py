"""AES-GCM: NIST vectors, tamper detection, AAD binding."""

import pytest

from repro.crypto.gcm import AesGcm, GcmAuthError

NIST_KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
NIST_IV = bytes.fromhex("cafebabefacedbaddecaf888")
NIST_PT = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
)
NIST_AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")


class TestGcmVectors:
    def test_nist_case_1_empty(self):
        # GCM test case 1: zero key, zero IV, empty everything.
        aead = AesGcm(bytes(16))
        out = aead.encrypt(bytes(12), b"")
        assert out.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_nist_case_2_zero_block(self):
        aead = AesGcm(bytes(16))
        out = aead.encrypt(bytes(12), bytes(16))
        assert out[:16].hex() == "0388dace60b6a392f328c2b971b2fe78"
        assert out[16:].hex() == "ab6e47d42cec13bdf53a67b21257bddf"

    def test_nist_case_4_with_aad(self):
        aead = AesGcm(NIST_KEY)
        out = aead.encrypt(NIST_IV, NIST_PT, NIST_AAD)
        assert out[-16:].hex() == "5bc94fbc3221a5db94fae95ae7121a47"

    def test_roundtrip_aes256(self):
        aead = AesGcm(bytes(32))
        out = aead.encrypt(bytes(12), b"secret tensor data", b"header")
        assert aead.decrypt(bytes(12), out, b"header") == b"secret tensor data"


class TestGcmSecurity:
    @pytest.fixture()
    def aead(self):
        return AesGcm(bytes(32))

    def test_ciphertext_tamper_detected(self, aead):
        out = bytearray(aead.encrypt(bytes(12), b"payload"))
        out[0] ^= 1
        with pytest.raises(GcmAuthError):
            aead.decrypt(bytes(12), bytes(out))

    def test_tag_tamper_detected(self, aead):
        out = bytearray(aead.encrypt(bytes(12), b"payload"))
        out[-1] ^= 1
        with pytest.raises(GcmAuthError):
            aead.decrypt(bytes(12), bytes(out))

    def test_wrong_aad_detected(self, aead):
        out = aead.encrypt(bytes(12), b"payload", b"aad-a")
        with pytest.raises(GcmAuthError):
            aead.decrypt(bytes(12), out, b"aad-b")

    def test_wrong_nonce_detected(self, aead):
        out = aead.encrypt(bytes(12), b"payload")
        with pytest.raises(GcmAuthError):
            aead.decrypt(b"\x01" + bytes(11), out)

    def test_wrong_key_detected(self):
        out = AesGcm(bytes(32)).encrypt(bytes(12), b"payload")
        with pytest.raises(GcmAuthError):
            AesGcm(b"\x01" * 32).decrypt(bytes(12), out)

    def test_truncated_record_rejected(self, aead):
        with pytest.raises(GcmAuthError, match="shorter"):
            aead.decrypt(bytes(12), b"short")

    def test_empty_plaintext_roundtrip(self, aead):
        out = aead.encrypt(bytes(12), b"", b"aad")
        assert aead.decrypt(bytes(12), out, b"aad") == b""

    def test_distinct_nonces_distinct_ciphertexts(self, aead):
        a = aead.encrypt(bytes(12), b"same")
        b = aead.encrypt(b"\x01" + bytes(11), b"same")
        assert a != b

    def test_non_96bit_nonce_supported(self, aead):
        nonce = bytes(range(16))
        out = aead.encrypt(nonce, b"data")
        assert aead.decrypt(nonce, out) == b"data"
