"""HKDF vectors, key manager accounting and rotation."""

import pytest

from repro.crypto.kdf import hkdf_expand, hkdf_extract, hkdf_sha256, hmac_sha256
from repro.crypto.keys import KeyManager, KeyRecord, KeyUsageExceeded


class TestHkdf:
    def test_rfc5869_case_1(self):
        ikm = bytes([0x0B] * 22)
        salt = bytes(range(13))
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_one_call_form(self):
        assert len(hkdf_sha256(b"ikm", salt=b"s", info=b"i", length=64)) == 64

    def test_info_separation(self):
        assert hkdf_sha256(b"k", info=b"a") != hkdf_sha256(b"k", info=b"b")

    def test_output_length_cap(self):
        with pytest.raises(ValueError):
            hkdf_expand(bytes(32), b"", 255 * 32 + 1)

    def test_hmac_known_answer(self):
        # RFC 4231 test case 2.
        tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert tag.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )


class TestKeyRecord:
    def test_derivations_distinct(self):
        record = KeyRecord(key_id="k", key=bytes(32))
        assert record.derive("p") != record.derive("p")

    def test_purpose_separation(self):
        a = KeyRecord(key_id="k", key=bytes(32))
        b = KeyRecord(key_id="k", key=bytes(32))
        assert a.derive("file") != b.derive("channel")

    def test_usage_limit_enforced(self):
        record = KeyRecord(key_id="k", key=bytes(32), usage_limit=2)
        record.derive("p")
        record.derive("p")
        with pytest.raises(KeyUsageExceeded):
            record.derive("p")

    def test_retired_key_unusable(self):
        record = KeyRecord(key_id="k", key=bytes(32), retired=True)
        with pytest.raises(KeyUsageExceeded):
            record.derive("p")


class TestKeyManager:
    def test_create_and_get(self):
        manager = KeyManager()
        record = manager.create_key("v0")
        assert manager.get("v0") is record
        assert manager.key_ids() == ["v0"]

    def test_duplicate_rejected(self):
        manager = KeyManager()
        manager.create_key("v0")
        with pytest.raises(ValueError):
            manager.create_key("v0")

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            KeyManager().get("nope")

    def test_rotation_replaces_key(self):
        manager = KeyManager()
        old = manager.create_key("v0")
        new = manager.rotate("v0")
        assert old.retired
        assert not new.retired
        assert new.generation == old.generation + 1
        assert new.key != old.key

    def test_rotated_old_key_unusable(self):
        manager = KeyManager()
        old = manager.create_key("v0")
        manager.rotate("v0")
        with pytest.raises(KeyUsageExceeded):
            old.derive("p")

    def test_needs_rotation_threshold(self):
        manager = KeyManager(usage_limit=10)
        manager.create_key("v0")
        assert not manager.needs_rotation("v0")
        for _ in range(9):
            manager.derive("v0", "p")
        assert manager.needs_rotation("v0")

    def test_recreate_after_retire(self):
        manager = KeyManager()
        manager.create_key("v0")
        manager.get("v0").retired = True
        fresh = manager.create_key("v0")
        assert fresh.generation == 1
