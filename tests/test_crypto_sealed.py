"""Sealed blobs: roundtrip, tamper detection, key binding, registry."""

import pytest

from repro.crypto.aead import available_aeads, get_aead
from repro.crypto.keys import KeyManager
from repro.crypto.sealed import SealedBlob, SealError, seal_bytes, unseal_bytes


@pytest.fixture()
def record():
    return KeyManager().create_key("variant-7")


class TestSealRoundtrip:
    def test_basic(self, record):
        blob = seal_bytes(record, "model.bin", b"weights" * 100)
        assert unseal_bytes(record.key, "variant-7", blob) == b"weights" * 100

    def test_wire_roundtrip(self, record):
        blob = seal_bytes(record, "m", b"data", freshness=5)
        parsed = SealedBlob.from_bytes(blob.to_bytes())
        assert parsed.freshness == 5
        assert unseal_bytes(record.key, "variant-7", parsed) == b"data"

    def test_each_seal_uses_fresh_key(self, record):
        a = seal_bytes(record, "m", b"same")
        b = seal_bytes(record, "m", b"same")
        assert a.ciphertext != b.ciphertext
        assert a.derivation_counter != b.derivation_counter

    def test_both_aeads_work(self, record):
        for name in available_aeads():
            blob = seal_bytes(record, f"f-{name}", b"x", aead_name=name)
            assert unseal_bytes(record.key, "variant-7", blob) == b"x"

    def test_burns_usage_counter(self, record):
        before = record.derivations
        seal_bytes(record, "m", b"x")
        assert record.derivations == before + 1


class TestSealSecurity:
    def test_ciphertext_tamper(self, record):
        blob = seal_bytes(record, "m", b"secret")
        bad = SealedBlob(
            aead=blob.aead,
            key_id=blob.key_id,
            derivation_counter=blob.derivation_counter,
            derivation_salt=blob.derivation_salt,
            nonce=blob.nonce,
            freshness=blob.freshness,
            path=blob.path,
            ciphertext=bytes([blob.ciphertext[0] ^ 1]) + blob.ciphertext[1:],
        )
        with pytest.raises(SealError):
            unseal_bytes(record.key, "variant-7", bad)

    def test_header_tamper_freshness(self, record):
        blob = seal_bytes(record, "m", b"secret", freshness=3)
        forged = SealedBlob(
            aead=blob.aead,
            key_id=blob.key_id,
            derivation_counter=blob.derivation_counter,
            derivation_salt=blob.derivation_salt,
            nonce=blob.nonce,
            freshness=99,  # attacker inflates freshness
            path=blob.path,
            ciphertext=blob.ciphertext,
        )
        with pytest.raises(SealError):
            unseal_bytes(record.key, "variant-7", forged)

    def test_path_swap_detected(self, record):
        blob = seal_bytes(record, "model-a.bin", b"secret")
        moved = SealedBlob(
            aead=blob.aead,
            key_id=blob.key_id,
            derivation_counter=blob.derivation_counter,
            derivation_salt=blob.derivation_salt,
            nonce=blob.nonce,
            freshness=blob.freshness,
            path="model-b.bin",
            ciphertext=blob.ciphertext,
        )
        with pytest.raises(SealError):
            unseal_bytes(record.key, "variant-7", moved)

    def test_wrong_kdk(self, record):
        blob = seal_bytes(record, "m", b"secret")
        with pytest.raises(SealError):
            unseal_bytes(bytes(32), "variant-7", blob)

    def test_wrong_key_id(self, record):
        blob = seal_bytes(record, "m", b"secret")
        with pytest.raises(SealError, match="sealed under key"):
            unseal_bytes(record.key, "other-variant", blob)

    def test_garbage_blob_rejected(self):
        with pytest.raises(SealError):
            SealedBlob.from_bytes(b"nonsense")

    def test_bad_magic_rejected(self):
        header = b'{"magic": "wrong"}'
        data = len(header).to_bytes(4, "big") + header
        with pytest.raises(SealError, match="magic"):
            SealedBlob.from_bytes(data)


class TestAeadRegistry:
    def test_available(self):
        assert available_aeads() == ["aes-gcm", "chacha20-poly1305"]

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown AEAD"):
            get_aead("rot13", bytes(32))

    def test_instantiation(self):
        for name in available_aeads():
            aead = get_aead(name, bytes(32))
            assert aead.name == name
