"""Partition quotients that form genuine DAGs (not chains).

§4.3: "Variant TEEs are organized by the monitor into a DAG that mirrors
the original model topology."  These tests build a branchy model,
partition it so two partitions are parallel branches, and check that
both schedulers and the simulator handle the non-chain topology.
"""

import numpy as np
import pytest

from repro.graph import GraphBuilder
from repro.mvx.bootstrap import bootstrap_deployment
from repro.mvx.config import MvxConfig
from repro.mvx.scheduler import InferenceOptions, SchedulingMode, run
from repro.partition.partition import Partition, PartitionSet
from repro.partition.verify import verify_partition_set
from repro.runtime import RuntimeConfig
from repro.runtime.interpreter import InterpreterRuntime
from repro.variants.pool import build_pool, diversified_specs


def branchy_model():
    """stem -> (branch A || branch B) -> concat -> head."""
    b = GraphBuilder("branchy", seed=0)
    x = b.input("input", (1, 3, 8, 8))
    stem = b.relu(b.conv(x, 8, kernel=3, pad=1, name="stem_conv"), name="stem_relu")
    a = b.relu(b.conv(stem, 8, kernel=3, pad=1, name="a_conv"), name="a_relu")
    a = b.conv(a, 8, kernel=1, pad=0, name="a_proj")
    c = b.relu(b.conv(stem, 8, kernel=5, pad=2, name="b_conv"), name="b_relu")
    c = b.conv(c, 8, kernel=1, pad=0, name="b_proj")
    merged = b.concat([a, c], name="merge")
    head = b.fc(b.global_avg_pool(merged, name="gap"), 5, name="head")
    b.set_output(b.softmax(head, name="out"))
    return b.finish()


@pytest.fixture(scope="module")
def dag_partition_set():
    model = branchy_model()
    by_name = {n.name: n for n in model.nodes}
    stem = [n for n in by_name if n.startswith("stem")]
    branch_a = [n for n in by_name if n.startswith("a_")]
    branch_b = [n for n in by_name if n.startswith("b_")]
    tail = [n for n in by_name if n not in set(stem + branch_a + branch_b)]
    partitions = [
        Partition(index=0, node_names=tuple(stem)),
        Partition(index=1, node_names=tuple(branch_a)),
        Partition(index=2, node_names=tuple(branch_b)),
        Partition(index=3, node_names=tuple(tail)),
    ]
    return PartitionSet(model=model, partitions=partitions)


class TestDagPartitionSet:
    def test_validates(self, dag_partition_set):
        dag_partition_set.validate()

    def test_parallel_branches_share_input(self, dag_partition_set):
        in_a = {s.name for s in dag_partition_set.subgraph(1).inputs}
        in_b = {s.name for s in dag_partition_set.subgraph(2).inputs}
        out_stem = {s.name for s in dag_partition_set.subgraph(0).outputs}
        assert in_a == in_b == out_stem

    def test_merge_partition_consumes_both(self, dag_partition_set):
        tail_inputs = {s.name for s in dag_partition_set.subgraph(3).inputs}
        out_a = {s.name for s in dag_partition_set.subgraph(1).outputs}
        out_b = {s.name for s in dag_partition_set.subgraph(2).outputs}
        assert out_a <= tail_inputs and out_b <= tail_inputs

    def test_staged_execution_correct(self, dag_partition_set):
        verify_partition_set(dag_partition_set)


class TestDagScheduling:
    @pytest.fixture(scope="class")
    def deployment(self, dag_partition_set):
        specs = [
            s
            for p in range(4)
            for s in diversified_specs(p, 3 if p in (1, 2) else 1, seed=0)
        ]
        pool = build_pool(dag_partition_set, specs, verify=False)
        config = MvxConfig.selective(4, {1: 3, 2: 3})
        _, monitor, _, _ = bootstrap_deployment(pool, config)
        return monitor

    @pytest.fixture(scope="class")
    def reference(self, dag_partition_set):
        runtime = InterpreterRuntime(RuntimeConfig(optimization_level=0))
        runtime.prepare(dag_partition_set.model)
        rng = np.random.default_rng(5)
        feeds = {"input": rng.normal(size=(1, 3, 8, 8)).astype(np.float32)}
        return feeds, runtime.run(feeds)

    def test_sequential_on_dag(self, deployment, reference):
        feeds, expected = reference
        results, stats = run(deployment, [feeds])
        for name, value in expected.items():
            assert np.allclose(results[0][name], value, atol=1e-2)
        assert stats.checkpoints_evaluated == 2  # both MVX branches

    def test_pipelined_on_dag(self, deployment, reference):
        feeds, expected = reference
        rng = np.random.default_rng(6)
        batches = [feeds] + [
            {"input": rng.normal(size=(1, 3, 8, 8)).astype(np.float32)}
            for _ in range(3)
        ]
        results, _ = run(
            deployment,
            batches,
            InferenceOptions(scheduling=SchedulingMode.PIPELINED),
        )
        for name, value in expected.items():
            assert np.allclose(results[0][name], value, atol=1e-2)
        seq_results, _ = run(deployment, batches)
        for a, b in zip(results, seq_results):
            for name in a:
                assert np.allclose(a[name], b[name], atol=1e-5)


class TestDagSimulation:
    def test_simulator_accepts_dag_plans(self, dag_partition_set):
        """The chain-order simulator treats the DAG conservatively."""
        from repro.simulation import CostModel, simulate
        from repro.simulation.scenarios import plan_from_partition_set

        config = MvxConfig.selective(4, {1: 3, 2: 3})
        stages = plan_from_partition_set(dag_partition_set, config)
        result = simulate(stages, CostModel(), num_batches=4)
        assert result.throughput > 0
