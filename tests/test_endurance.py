"""Endurance run: a long batch stream with attacks landing mid-stream.

The system-level guarantee under test: across the whole stream, with
faults injected at arbitrary points, NO wrong output is ever silently
accepted -- every served result matches the clean reference model, and
every injected fault produces a detection event.
"""

import numpy as np
import pytest

from repro.mvx import (
    AdaptiveController,
    InferenceService,
    MvteeSystem,
    ResponseAction,
)
from repro.runtime import RuntimeConfig
from repro.runtime.interpreter import InterpreterRuntime
from repro.runtime.faults import FaultInjector
from repro.zoo import build_model

NUM_BATCHES = 60
FAULT_AT = (15, 35)  # stream positions where an attack lands


@pytest.fixture(scope="module")
def model():
    return build_model("small-resnet", input_size=16, blocks_per_stage=1)


@pytest.fixture(scope="module")
def reference_runtime(model):
    runtime = InterpreterRuntime(RuntimeConfig(optimization_level=0))
    runtime.prepare(model)
    return runtime


def test_endurance_no_silent_corruption(model, reference_runtime):
    system = MvteeSystem.deploy(
        model,
        num_partitions=3,
        mvx_partitions={0: 3, 1: 3, 2: 3},
        pool_variants_per_partition=5,  # spare variants for the controller
        seed=3,
        verify_partitions=False,
        verify_variants=False,
    )
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    controller = AdaptiveController(system, scale_down_threshold=-1.0)
    service = InferenceService(system, pipelined=True, controller=controller)
    rng = np.random.default_rng(42)

    faults_injected = 0
    wrong_outputs = 0
    request_ids = []
    inputs = {}
    for position in range(NUM_BATCHES):
        if position in FAULT_AT:
            # Corrupt a currently-live variant on a rotating partition.
            partition = (position // 10) % 3
            connections = system.monitor.stage_connections(partition)
            victim = connections[position % len(connections)]
            FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
            faults_injected += 1
        x = rng.normal(size=(1, 3, 16, 16)).astype(np.float32)
        rid = service.submit({"input": x})
        request_ids.append(rid)
        inputs[rid] = x
        if position % 5 == 4:
            service.drain()
    service.drain()

    for rid in request_ids:
        served = next(iter(service.result(rid).values()))
        expected = next(
            iter(reference_runtime.run({"input": inputs[rid]}).values())
        )
        if not np.allclose(served, expected, atol=1e-2):
            wrong_outputs += 1

    metrics = service.metrics()
    assert wrong_outputs == 0, f"{wrong_outputs} silently wrong outputs served"
    assert metrics.requests_served == NUM_BATCHES
    assert metrics.requests_failed == 0
    assert metrics.divergences_detected >= faults_injected
    # Every partition still has a live panel at the end.
    assert all(count >= 1 for count in metrics.live_variants.values())
    # The controller reacted to the threat signal.
    assert metrics.scaling_actions >= 1


def test_prometheus_export(model):
    system = MvteeSystem.deploy(
        model, num_partitions=2, mvx_partitions={},
        seed=0, verify_partitions=False, verify_variants=False,
    )
    service = InferenceService(system)
    service.submit({"input": np.zeros((1, 3, 16, 16), dtype=np.float32)})
    service.drain()
    text = service.metrics().to_prometheus()
    assert "mvtee_requests_served_total 1" in text
    assert 'mvtee_live_variants{partition="0"} 1' in text
    assert "# TYPE mvtee_bytes_protected_total counter" in text
