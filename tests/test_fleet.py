"""Multi-tenant fleet: quotas, isolation, health, scaling, updates."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.fleet import (
    FleetAutoscaler,
    ModelFleet,
    QuotaExceeded,
    SLOClass,
    TenantSpec,
    TokenBucket,
)
from repro.mvx import MvteeSystem
from repro.observability.health import HealthStatus
from repro.observability.recorder import (
    KIND_ROLLING_UPDATE,
    KIND_VARIANT_REPLACED,
)
from repro.serving import Overloaded, ServingPolicy
from repro.zoo import build_model


def mlp_feeds(seed: int = 0):
    return {
        "input": np.random.default_rng(seed)
        .standard_normal((1, 32))
        .astype(np.float32)
    }


def cnn_feeds(seed: int = 0):
    return {
        "input": np.random.default_rng(seed)
        .standard_normal((1, 3, 16, 16))
        .astype(np.float32)
    }


def quick_spec(name: str, **overrides) -> TenantSpec:
    defaults = dict(
        name=name,
        model="tiny-mlp",
        verify_partitions=False,
        verify_variants=False,
    )
    defaults.update(overrides)
    return TenantSpec(**defaults)


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]
        clock.advance(1.0)  # 2 tokens back
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_capacity_is_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert bucket.available == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestTenantSpec:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="name"):
            quick_spec("")
        with pytest.raises(ValueError, match="weight"):
            quick_spec("t", weight=0.0)
        with pytest.raises(ValueError, match="deadline_s"):
            quick_spec("t", deadline_s=0.0)
        with pytest.raises(ValueError, match="min_workers"):
            quick_spec("t", min_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            quick_spec("t", min_workers=3, max_workers=2)

    def test_effective_deadline_follows_slo_class(self):
        assert quick_spec("t").effective_deadline_s() is None
        latency = quick_spec("t", slo=SLOClass.LATENCY)
        assert (
            latency.effective_deadline_s()
            == TenantSpec.DEFAULT_LATENCY_DEADLINE_S
        )
        explicit = quick_spec("t", slo=SLOClass.LATENCY, deadline_s=0.5)
        assert explicit.effective_deadline_s() == 0.5


@pytest.fixture(scope="module")
def fleet():
    fleet = ModelFleet(quota_rps_per_weight=10_000.0)
    fleet.register(quick_spec("alpha", mvx_partitions={1: 2}))
    fleet.register(
        quick_spec("bravo", model="tiny-cnn", slo=SLOClass.LATENCY, weight=2.0)
    )
    yield fleet
    fleet.shutdown()


class TestFrontDoor:
    def test_serves_both_tenants(self, fleet):
        door = fleet.front_door
        assert door.tenants() == ["alpha", "bravo"]
        a = door.submit("alpha", mlp_feeds())
        b = door.submit("bravo", cnn_feeds())
        assert a.result(timeout=30.0) and b.result(timeout=30.0)

    def test_unknown_tenant_rejected(self, fleet):
        with pytest.raises(KeyError, match="unknown tenant"):
            fleet.front_door.submit("zulu", mlp_feeds())

    def test_duplicate_registration_rejected(self, fleet):
        with pytest.raises(ValueError, match="already registered"):
            fleet.register(quick_spec("alpha"))

    def test_fleet_metrics_flow(self, fleet):
        fleet.front_door.submit("alpha", mlp_feeds()).result(timeout=30.0)
        registry = fleet.registry
        assert registry.counter("mvtee_tenant_requests_total").value(
            tenant="alpha"
        ) >= 1
        assert registry.gauge("mvtee_fleet_tenants").value() == 2
        assert (
            registry.histogram("mvtee_tenant_latency_seconds").count(
                tenant="alpha"
            )
            >= 1
        )
        text = fleet.render_prometheus()
        assert 'mvtee_tenant_p95_seconds{tenant="alpha"}' in text

    def test_healthz_aggregates_worst_tenant(self, fleet):
        report = fleet.healthz()
        assert set(report.tenants) == {"alpha", "bravo"}
        assert report.status is HealthStatus.OK
        assert report.to_json()["status"] == "ok"


class TestWeightedFairAdmission:
    def test_burst_shed_lands_only_on_the_bursting_tenant(self):
        clock = FakeClock()
        fleet = ModelFleet(
            quota_rps_per_weight=5.0, burst_s=1.0, clock=clock
        )
        try:
            fleet.register(quick_spec("steady"))
            fleet.register(quick_spec("bursty"))
            shed = {"steady": 0, "bursty": 0}
            served = {"steady": 0, "bursty": 0}
            # steady stays inside its 5 rps budget; bursty fires 4x.
            for _ in range(20):
                clock.advance(0.2)
                offered = [("steady", 1), ("bursty", 4)]
                for name, count in offered:
                    for _ in range(count):
                        try:
                            fleet.submit(name, mlp_feeds())
                            served[name] += 1
                        except QuotaExceeded:
                            shed[name] += 1
            assert shed["steady"] == 0
            assert shed["bursty"] > 0
            assert served["steady"] == 20
            registry = fleet.registry
            assert registry.counter(
                "mvtee_tenant_requests_shed_total"
            ).value(tenant="steady") == 0
            assert registry.counter(
                "mvtee_tenant_requests_shed_total"
            ).value(tenant="bursty") == shed["bursty"]
        finally:
            fleet.shutdown()

    def test_quota_exceeded_is_an_overload(self):
        assert issubclass(QuotaExceeded, Overloaded)

    def test_engine_overload_counts_as_tenant_shed(self):
        fleet = ModelFleet(quota_rps_per_weight=10_000.0)
        try:
            fleet.register(
                quick_spec(
                    "tight",
                    policy=ServingPolicy(capacity=1, num_workers=1),
                )
            )
            entry = fleet.tenant("tight")
            with entry.engine.quiesce(timeout=30.0):
                overloads = 0
                for i in range(8):
                    try:
                        fleet.submit("tight", mlp_feeds(i))
                    except Overloaded:
                        overloads += 1
                assert overloads > 0
                assert fleet.registry.counter(
                    "mvtee_tenant_requests_shed_total"
                ).value(tenant="tight") == overloads
        finally:
            fleet.shutdown()


class TestTenantIsolation:
    def test_fleet_outputs_bit_identical_to_standalone(self):
        """The fleet adds routing, not math: same model, same bits."""
        spec = quick_spec("iso", mvx_partitions={1: 2}, seed=7)
        fleet = ModelFleet(quota_rps_per_weight=10_000.0)
        try:
            fleet.register(spec)
            fleet_out = fleet.front_door.submit("iso", mlp_feeds(5)).result(
                timeout=30.0
            )
        finally:
            fleet.shutdown()
        standalone = MvteeSystem.deploy(
            build_model(spec.model, **spec.model_kwargs),
            num_partitions=spec.num_partitions,
            mvx_partitions=dict(spec.mvx_partitions),
            seed=spec.seed,
            verify_partitions=False,
            verify_variants=False,
        )
        solo_out = standalone.infer(mlp_feeds(5))
        assert set(fleet_out) == set(solo_out)
        for name in solo_out:
            np.testing.assert_array_equal(fleet_out[name], solo_out[name])

    def test_tenants_have_isolated_registries(self, fleet):
        fleet.front_door.submit("alpha", mlp_feeds()).result(timeout=30.0)
        alpha = fleet.tenant("alpha").registry
        bravo = fleet.tenant("bravo").registry
        assert alpha is not bravo
        assert alpha is not fleet.registry
        assert alpha.counter("mvtee_requests_served_total").total() >= 1


class TestAutoscaler:
    def test_scales_up_on_queue_depth_and_down_when_idle(self):
        fleet = ModelFleet(quota_rps_per_weight=10_000.0)
        try:
            fleet.register(
                quick_spec(
                    "elastic",
                    min_workers=1,
                    max_workers=3,
                    policy=ServingPolicy(num_workers=1, capacity=64),
                )
            )
            scaler = FleetAutoscaler(
                fleet, scale_up_depth=4, idle_steps_to_shrink=2
            )
            entry = fleet.tenant("elastic")
            with entry.engine.quiesce(timeout=30.0):
                tickets = [
                    fleet.submit("elastic", mlp_feeds(i)) for i in range(8)
                ]
                actions = scaler.step()
            assert actions == [("elastic", 2)]
            assert entry.engine.num_workers == 2
            assert fleet.registry.counter(
                "mvtee_autoscale_actions_total"
            ).value(tenant="elastic", direction="up") == 1
            for ticket in tickets:
                ticket.result(timeout=30.0)
            # Draining + idle steps walk the pool back down to min.
            down = []
            for _ in range(10):
                down += scaler.step()
                if entry.engine.num_workers == 1:
                    break
            assert entry.engine.num_workers == 1
            assert ("elastic", 1) in down
        finally:
            fleet.shutdown()

    def test_respects_max_workers_bound(self):
        fleet = ModelFleet(quota_rps_per_weight=10_000.0)
        try:
            fleet.register(
                quick_spec(
                    "capped",
                    max_workers=1,
                    policy=ServingPolicy(num_workers=1, capacity=64),
                )
            )
            scaler = FleetAutoscaler(fleet, scale_up_depth=2)
            entry = fleet.tenant("capped")
            with entry.engine.quiesce(timeout=30.0):
                tickets = [
                    fleet.submit("capped", mlp_feeds(i)) for i in range(4)
                ]
                assert scaler.step() == []
            assert entry.engine.num_workers == 1
            for ticket in tickets:
                ticket.result(timeout=30.0)
        finally:
            fleet.shutdown()

    def test_thread_lifecycle(self):
        fleet = ModelFleet(quota_rps_per_weight=10_000.0)
        try:
            scaler = fleet.start_autoscaler(interval_s=0.01)
            assert fleet.start_autoscaler() is scaler  # idempotent
            time.sleep(0.05)
        finally:
            fleet.shutdown()
        assert fleet._autoscaler is None


class TestRollingUpdate:
    def test_zero_dropped_tickets_under_open_loop_load(self):
        fleet = ModelFleet(quota_rps_per_weight=100_000.0)
        try:
            fleet.register(quick_spec("live", mvx_partitions={1: 2}))
            entry = fleet.tenant("live")
            variants_before = dict(entry.system.live_variants())
            stop = threading.Event()
            outcomes = {"done": 0, "failed": []}
            lock = threading.Lock()

            def open_loop():
                i = 0
                while not stop.is_set():
                    try:
                        ticket = fleet.submit("live", mlp_feeds(i))
                    except Overloaded:
                        time.sleep(0.002)
                        continue

                    def note(t):
                        with lock:
                            if t.exception(timeout=0) is None:
                                outcomes["done"] += 1
                            else:
                                outcomes["failed"].append(
                                    t.exception(timeout=0)
                                )

                    ticket.add_done_callback(note)
                    i += 1
                    time.sleep(0.002)

            producer = threading.Thread(target=open_loop, daemon=True)
            producer.start()
            time.sleep(0.1)
            updated = fleet.rolling_update("live", seed=11)
            time.sleep(0.1)
            stop.set()
            producer.join(timeout=10.0)
            with entry.engine.quiesce(timeout=30.0):
                pass  # let in-flight batches settle before counting
            assert updated == list(range(len(entry.system.partition_set)))
            with lock:
                assert outcomes["failed"] == []
                assert outcomes["done"] > 0
            # Every variant id was replaced by the update.
            variants_after = entry.system.live_variants()
            for index, before_ids in variants_before.items():
                assert not set(before_ids) & set(variants_after[index])
        finally:
            fleet.shutdown()

    def test_recorder_and_ledger_evidence(self):
        fleet = ModelFleet(quota_rps_per_weight=10_000.0)
        try:
            fleet.register(quick_spec("audited", mvx_partitions={1: 2}))
            fleet.front_door.submit("audited", mlp_feeds()).result(
                timeout=30.0
            )
            fleet.rolling_update("audited", seed=5)
            fleet.recorder.verify_chain()
            replaced = fleet.recorder.events(KIND_VARIANT_REPLACED)
            entry = fleet.tenant("audited")
            assert len(replaced) >= entry.system.config.total_variants()
            (update_event,) = fleet.recorder.events(KIND_ROLLING_UPDATE)
            assert update_event.data["tenant"] == "audited"
            assert update_event.data["partitions"] == list(
                range(len(entry.system.partition_set))
            )
            entry.system.monitor.ledger.verify_chain()
            assert fleet.registry.counter(
                "mvtee_rolling_updates_total"
            ).value(tenant="audited") == 1
            # Serving still works on the fresh variant group.
            assert fleet.front_door.submit("audited", mlp_feeds()).result(
                timeout=30.0
            )
        finally:
            fleet.shutdown()


class TestFleetLifecycle:
    def test_context_manager_shuts_down(self):
        with ModelFleet(quota_rps_per_weight=10_000.0) as fleet:
            fleet.register(quick_spec("brief"))
            assert fleet.front_door.submit("brief", mlp_feeds()).result(
                timeout=30.0
            )
        assert fleet.tenants() == []

    def test_fleet_deploys_with_sinks_not_legacy_kwargs(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with ModelFleet(quota_rps_per_weight=10_000.0) as fleet:
                fleet.register(quick_spec("modern"))
                fleet.front_door.submit("modern", mlp_feeds()).result(
                    timeout=30.0
                )
