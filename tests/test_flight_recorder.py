"""Flight recorder: hash chain, ring eviction, export/replay, tampering."""

import json
import threading

import pytest

from repro.observability.recorder import (
    GENESIS_DIGEST,
    KIND_CHECKPOINT,
    KIND_DIVERGENCE,
    AuditChainError,
    AuditEvent,
    FlightRecorder,
)


def _fill(recorder, n, kind=KIND_CHECKPOINT):
    for i in range(n):
        recorder.record(kind, batch=i)


class TestChain:
    def test_first_entry_anchors_at_genesis(self):
        recorder = FlightRecorder()
        event = recorder.record(KIND_CHECKPOINT, batch=0)
        assert event.previous_digest == GENESIS_DIGEST
        assert event.digest == event.recompute_digest()

    def test_entries_link(self):
        recorder = FlightRecorder()
        _fill(recorder, 5)
        events = recorder.events()
        for previous, event in zip(events, events[1:]):
            assert event.previous_digest == previous.digest
            assert event.sequence == previous.sequence + 1

    def test_verify_chain_passes(self):
        recorder = FlightRecorder()
        _fill(recorder, 10)
        assert recorder.verify_chain() == 10

    def test_digest_covers_data(self):
        # Two recorders with identical timing but different payloads must
        # produce different digests (the chain binds the content).
        a = FlightRecorder(clock=lambda: 1.0)
        b = FlightRecorder(clock=lambda: 1.0)
        a.record(KIND_CHECKPOINT, batch=0)
        b.record(KIND_CHECKPOINT, batch=1)
        assert a.last().digest != b.last().digest

    def test_mutated_entry_detected(self):
        recorder = FlightRecorder()
        _fill(recorder, 3)
        events = recorder.events()
        forged = AuditEvent(
            sequence=events[1].sequence,
            kind=events[1].kind,
            timestamp=events[1].timestamp,
            data={"batch": 999},
            previous_digest=events[1].previous_digest,
            digest=events[1].digest,
        )
        with pytest.raises(AuditChainError, match="digest mismatch"):
            FlightRecorder.verify_events([events[0], forged, events[2]])

    def test_dropped_entry_detected(self):
        recorder = FlightRecorder()
        _fill(recorder, 3)
        events = recorder.events()
        with pytest.raises(AuditChainError, match="gap"):
            FlightRecorder.verify_events([events[0], events[2]])

    def test_reordered_entries_detected(self):
        recorder = FlightRecorder()
        _fill(recorder, 3)
        events = recorder.events()
        with pytest.raises(AuditChainError):
            FlightRecorder.verify_events([events[1], events[0], events[2]])


class TestRingBuffer:
    def test_eviction_keeps_chain_verifiable(self):
        recorder = FlightRecorder(capacity=4)
        _fill(recorder, 10)
        assert len(recorder) == 4
        assert recorder.total_recorded == 10
        # The retained window starts mid-chain: its first entry anchors
        # as given, everything after must still link.
        assert recorder.verify_chain() == 4
        assert [e.sequence for e in recorder.events()] == [6, 7, 8, 9]

    def test_kind_filter(self):
        recorder = FlightRecorder()
        recorder.record(KIND_CHECKPOINT, batch=0)
        recorder.record(KIND_DIVERGENCE, batch=0)
        recorder.record(KIND_CHECKPOINT, batch=1)
        assert len(recorder.events(KIND_DIVERGENCE)) == 1
        assert len(recorder.events(KIND_CHECKPOINT)) == 2

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_concurrent_recording_keeps_chain_intact(self):
        recorder = FlightRecorder()
        threads = [
            threading.Thread(target=_fill, args=(recorder, 50)) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert recorder.total_recorded == 200
        assert recorder.verify_chain() == 200


class TestExportReplay:
    def test_round_trip(self, tmp_path):
        recorder = FlightRecorder()
        _fill(recorder, 5)
        path = tmp_path / "audit.jsonl"
        assert recorder.export_jsonl(path) == 5
        replayed = FlightRecorder.replay(path)
        assert replayed == recorder.events()

    def test_tampered_export_rejected_on_replay(self, tmp_path):
        recorder = FlightRecorder()
        _fill(recorder, 5)
        path = tmp_path / "audit.jsonl"
        recorder.export_jsonl(path)
        lines = path.read_text().splitlines()
        doc = json.loads(lines[2])
        doc["data"]["batch"] = 999
        lines[2] = json.dumps(doc, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(AuditChainError):
            FlightRecorder.replay(path)

    def test_every_single_entry_mutation_is_detected(self, tmp_path):
        # The acceptance bar: flip any one entry, replay must fail.
        recorder = FlightRecorder()
        _fill(recorder, 4)
        path = tmp_path / "audit.jsonl"
        recorder.export_jsonl(path)
        pristine = path.read_text().splitlines()
        for i in range(len(pristine)):
            lines = list(pristine)
            doc = json.loads(lines[i])
            doc["timestamp"] = doc["timestamp"] + 1.0
            lines[i] = json.dumps(doc, sort_keys=True)
            path.write_text("\n".join(lines) + "\n")
            with pytest.raises(AuditChainError):
                FlightRecorder.replay(path)

    def test_numpy_payloads_are_canonicalized(self, tmp_path):
        import numpy as np

        recorder = FlightRecorder()
        recorder.record(
            KIND_CHECKPOINT, value=np.float32(1.5), index=np.int64(3), seq=(1, 2)
        )
        path = tmp_path / "audit.jsonl"
        recorder.export_jsonl(path)
        replayed = FlightRecorder.replay(path)
        assert replayed[0].data == {"value": 1.5, "index": 3, "seq": [1, 2]}
