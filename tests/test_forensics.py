"""Divergence forensics: tensor summaries, mismatch analysis, incidents."""

import numpy as np
import pytest

from repro.mvx import MvteeSystem, ResponseAction
from repro.observability import MetricsRegistry, Sinks, Tracer
from repro.observability.forensics import (
    IncidentStore,
    analyze_mismatch,
    build_incident_report,
    summarize_tensor,
)
from repro.observability.recorder import KIND_DIVERGENCE, FlightRecorder
from repro.runtime.faults import FaultInjector
from repro.zoo import build_model


class TestTensorSummary:
    def test_stats_and_digest(self):
        array = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        summary = summarize_tensor("out", array)
        assert summary.shape == (2, 2)
        assert summary.dtype == "float32"
        assert summary.min == 1.0 and summary.max == 4.0 and summary.mean == 2.5
        assert summary.nan_count == 0
        assert summary.digest == summarize_tensor("out", array.copy()).digest

    def test_nan_handling(self):
        array = np.array([1.0, np.nan, 3.0])
        summary = summarize_tensor("out", array)
        assert summary.nan_count == 1
        assert summary.min == 1.0 and summary.max == 3.0  # finite-only stats

    def test_all_nan(self):
        summary = summarize_tensor("out", np.full(3, np.nan))
        assert summary.nan_count == 3
        assert np.isnan(summary.min)


class TestMismatchAnalysis:
    def test_identical_tensors(self):
        array = np.arange(6.0).reshape(2, 3)
        analysis = analyze_mismatch("out", array, array.copy())
        assert not analysis.mismatched
        assert analysis.max_abs_error == 0.0
        assert analysis.first_mismatch_index is None

    def test_single_element_flip(self):
        reference = np.zeros((2, 3))
        suspect = reference.copy()
        suspect[1, 2] = 5.0
        analysis = analyze_mismatch("out", reference, suspect)
        assert analysis.mismatch_count == 1
        assert analysis.max_abs_error == 5.0
        assert analysis.first_mismatch_index == 5
        assert analysis.first_mismatch_coords == (1, 2)
        assert analysis.reference_value == 0.0
        assert analysis.suspect_value == 5.0

    def test_nan_counts_as_mismatch_even_vs_nan(self):
        reference = np.array([1.0, np.nan])
        suspect = np.array([1.0, np.nan])
        analysis = analyze_mismatch("out", reference, suspect)
        assert analysis.mismatch_count == 1
        assert analysis.max_abs_error == float("inf")

    def test_shape_mismatch(self):
        analysis = analyze_mismatch("out", np.zeros(4), np.zeros(5))
        assert analysis.mismatched
        assert analysis.max_abs_error == float("inf")

    def test_relative_error(self):
        reference = np.array([100.0])
        suspect = np.array([110.0])
        analysis = analyze_mismatch("out", reference, suspect)
        assert analysis.max_abs_error == pytest.approx(10.0)
        assert analysis.max_rel_error == pytest.approx(0.1)


class TestIncidentReport:
    def _report(self, **overrides):
        reference = {"out": np.zeros((2, 2))}
        bad = {"out": np.array([[0.0, 9.0], [0.0, 0.0]])}
        kwargs = dict(
            incident_id="inc-0001",
            kind="divergence",
            batch_id=3,
            partition_index=1,
            suspected_culprits=("v-bad",),
            agreeing_variants=("v-a", "v-b"),
            outputs_by_variant={"v-a": reference, "v-b": reference, "v-bad": bad},
            reference_outputs=reference,
            response_action="drop-variant",
        )
        kwargs.update(overrides)
        return build_incident_report(**kwargs)

    def test_attribution_and_mismatch(self):
        report = self._report()
        assert report.attribution_confident
        assert set(report.variant_summaries) == {"v-a", "v-b", "v-bad"}
        assert list(report.mismatches) == ["v-bad"]
        assert report.max_abs_error == 9.0
        (analysis,) = report.mismatches["v-bad"]
        assert analysis.first_mismatch_index == 1

    def test_attribution_tentative_without_majority(self):
        report = self._report(
            suspected_culprits=("v-bad", "v-b"), agreeing_variants=("v-a",)
        )
        assert not report.attribution_confident
        assert "tentative" in report.to_text()

    def test_renderings(self):
        report = self._report()
        doc = report.to_json()
        assert doc["incident_id"] == "inc-0001"
        assert doc["mismatches"]["v-bad"][0]["max_abs_error"] == 9.0
        text = report.to_text()
        assert "v-bad" in text and "drop-variant" in text

    def test_store_bounds_and_ids(self):
        store = IncidentStore(capacity=2)
        for _ in range(3):
            store.add(self._report(incident_id=store.new_id()))
        assert len(store) == 2
        assert store.latest().incident_id == "inc-0003"
        assert [r.incident_id for r in store.incidents()] == ["inc-0002", "inc-0003"]
        assert store.incidents("crash") == []


class TestEndToEndForensics:
    """The acceptance scenario: bit flip -> incident naming the culprit."""

    @pytest.fixture()
    def faulted_run(self):
        model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
        recorder = FlightRecorder()
        tracer = Tracer()
        system = MvteeSystem.deploy(
            model,
            num_partitions=3,
            mvx_partitions={1: 3},
            seed=0,
            verify_partitions=False,
            verify_variants=False,
            sinks=Sinks(
                tracer=tracer, metrics=MetricsRegistry(), recorder=recorder
            ),
        )
        system.monitor.response_action = ResponseAction.DROP_VARIANT
        victim = system.monitor.stage_connections(1)[1]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        feeds = {
            "input": np.random.default_rng(0)
            .normal(size=(1, 3, 16, 16))
            .astype(np.float32)
        }
        system.infer(feeds)
        return system, recorder, tracer, victim

    def test_incident_names_dissenting_variant(self, faulted_run):
        system, _, _, victim = faulted_run
        incidents = system.monitor.incidents("divergence")
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident.suspected_culprits == (victim.variant_id,)
        assert victim.variant_id not in incident.agreeing_variants
        assert incident.attribution_confident
        assert incident.partition_index == 1
        assert incident.max_abs_error > 0
        assert incident.response_action == "drop-variant"

    def test_incident_correlates_with_trace(self, faulted_run):
        system, _, tracer, _ = faulted_run
        incident = system.monitor.incidents("divergence")[0]
        assert incident.trace_id is not None
        root_ids = {root.span_id for root in tracer.roots}
        assert incident.trace_id in root_ids
        # The span id points inside that root's tree.
        (root,) = [r for r in tracer.roots if r.span_id == incident.trace_id]
        assert incident.span_id in {span.span_id for span in root.walk()}

    def test_audit_chain_records_the_detection(self, faulted_run):
        system, recorder, _, victim = faulted_run
        assert recorder.verify_chain() == len(recorder)
        divergences = recorder.events(KIND_DIVERGENCE)
        assert len(divergences) == 1
        assert divergences[0].data["suspected"] == [victim.variant_id]
        assert divergences[0].data["incident_id"] == "inc-0001"

    def test_incident_counter_incremented(self, faulted_run):
        system, _, _, _ = faulted_run
        count = system.monitor.metrics_registry.counter(
            "mvtee_incidents_total"
        ).total()
        assert count == 1

    def test_service_surfaces_incidents(self, faulted_run):
        from repro.mvx.service import InferenceService

        system, _, _, victim = faulted_run
        service = InferenceService(system)
        incidents = service.incidents("divergence")
        assert incidents and incidents[0].suspected_culprits == (victim.variant_id,)


class TestCrashForensics:
    def test_crash_incident_captured(self):
        model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
        system = MvteeSystem.deploy(
            model,
            num_partitions=3,
            mvx_partitions={1: 3},
            seed=0,
            verify_partitions=False,
            verify_variants=False,
            sinks=Sinks(recorder=FlightRecorder()),
        )
        system.monitor.response_action = ResponseAction.DROP_VARIANT
        victim = system.monitor.stage_connections(1)[0]
        FaultInjector(victim.host.runtime).arm_op_crash(
            "Conv", lambda node, inputs: True
        )
        feeds = {
            "input": np.random.default_rng(1)
            .normal(size=(1, 3, 16, 16))
            .astype(np.float32)
        }
        system.infer(feeds)
        incidents = system.monitor.incidents("crash")
        assert len(incidents) == 1
        assert incidents[0].suspected_culprits == (victim.variant_id,)
        assert incidents[0].error
        assert system.monitor.recorder.verify_chain() == len(system.monitor.recorder)
