"""Fused operators and the level-2 optimization pipeline."""

import numpy as np
import pytest

from repro.runtime import RuntimeConfig, create_runtime
from repro.runtime.optimizations import optimize
from repro.variants.transforms import TransformError, apply_transforms, verify_equivalent
from repro.zoo import build_model


class TestFusionTransforms:
    def test_fuse_conv_relu_equivalent(self, small_resnet):
        # Convs are followed by BatchNorm in the raw graph; fold BN first
        # (selective-optimize), then Conv->Relu pairs exist to fuse.
        folded = apply_transforms(small_resnet, ["selective-optimize"], seed=0)
        fused = apply_transforms(folded, ["fuse-conv-relu"], seed=0)
        verify_equivalent(small_resnet, fused, trials=1)
        assert any(n.op_type == "FusedConvRelu" for n in fused.nodes)
        # Every fused pair removed one Relu node.
        fused_count = sum(1 for n in fused.nodes if n.op_type == "FusedConvRelu")
        assert len(fused.nodes) == len(folded.nodes) - fused_count

    def test_fuse_gemm_relu_on_mlp(self, tiny_mlp):
        fused = apply_transforms(tiny_mlp, ["fuse-gemm-relu"], seed=0)
        verify_equivalent(tiny_mlp, fused, trials=2)
        assert any(n.op_type == "FusedGemmRelu" for n in fused.nodes)

    def test_nothing_to_fuse_raises(self, tiny_mlp):
        # tiny-mlp has no Conv at all.
        with pytest.raises(TransformError, match="no Conv"):
            apply_transforms(tiny_mlp, ["fuse-conv-relu"], seed=0)

    def test_fusion_changes_structural_hash(self, small_resnet):
        fused = apply_transforms(
            small_resnet, ["selective-optimize", "fuse-conv-relu"], seed=0
        )
        assert fused.structural_hash() != small_resnet.structural_hash()


class TestOptimizationLevel2:
    def test_level2_fuses_after_bn_fold(self, small_resnet):
        # BN folding first removes Conv->BN->Relu indirection, exposing
        # Conv->Relu pairs; level 2 then fuses them.
        optimized = optimize(small_resnet, 2)
        assert any(n.op_type == "FusedConvRelu" for n in optimized.nodes)
        assert not any(n.op_type == "BatchNormalization" for n in optimized.nodes)

    def test_level2_runtime_agrees(self, small_resnet, small_input, small_resnet_reference):
        runtime = create_runtime(RuntimeConfig(optimization_level=2))
        runtime.prepare(small_resnet)
        out = runtime.run({"input": small_input})
        for name, expected in small_resnet_reference.items():
            assert np.allclose(out[name], expected, atol=1e-3)

    def test_level2_on_compiled_engine(self, small_resnet, small_input, small_resnet_reference):
        runtime = create_runtime(
            RuntimeConfig(engine="compiled", optimization_level=2, blas_backend="eigen-sim")
        )
        runtime.prepare(small_resnet)
        out = runtime.run({"input": small_input})
        for name, expected in small_resnet_reference.items():
            assert np.allclose(out[name], expected, atol=1e-3)

    def test_level2_mlp(self, tiny_mlp):
        optimized = optimize(tiny_mlp, 2)
        assert any(n.op_type == "FusedGemmRelu" for n in optimized.nodes)


class TestFusedAsMvxVariant:
    def test_fused_variant_in_deployment(self, small_resnet, small_input, small_resnet_reference):
        from repro.mvx import MvteeSystem
        from repro.partition import ContractionSettings, random_contraction
        from repro.variants.pool import build_pool
        from repro.variants.spec import VariantSpec
        from repro.mvx.config import MvxConfig
        from repro.mvx.bootstrap import bootstrap_deployment

        ps = random_contraction(small_resnet, ContractionSettings(2, seed=0))
        specs = [
            VariantSpec(variant_id="p0-plain", partition_index=0),
            VariantSpec(
                variant_id="p0-fused",
                partition_index=0,
                graph_transforms=("selective-optimize", "fuse-conv-relu"),
            ),
            VariantSpec(variant_id="p1-plain", partition_index=1),
        ]
        pool = build_pool(ps, specs, verify=True)
        config = MvxConfig.selective(2, {0: 2})
        _, monitor, _, _ = bootstrap_deployment(pool, config)
        from repro.mvx.scheduler import run

        results, stats = run(monitor, [{"input": small_input}])
        name = next(iter(small_resnet_reference))
        assert np.allclose(results[0][name], small_resnet_reference[name], atol=1e-2)
        assert stats.divergences == 0
