"""GraphBuilder ergonomics and FLOP/byte accounting."""

import numpy as np
import pytest

from repro.graph import GraphBuilder, graph_flops, infer_shapes
from repro.graph.flops import (
    graph_activation_bytes,
    humanize_flops,
    node_flops,
    parameter_bytes,
)


class TestBuilder:
    def test_auto_names_unique(self):
        b = GraphBuilder("m")
        x = b.input("x", (1, 3, 8, 8))
        y1 = b.conv(x, 4)
        y2 = b.conv(x, 4)
        assert y1 != y2

    def test_duplicate_initializer_rejected(self):
        b = GraphBuilder("m")
        b.add_initializer("w", np.zeros(3))
        with pytest.raises(ValueError, match="already registered"):
            b.add_initializer("w", np.zeros(3))

    def test_weights_seeded_reproducible(self):
        def build(seed):
            b = GraphBuilder("m", seed=seed)
            x = b.input("x", (1, 3, 8, 8))
            b.set_output(b.conv(x, 4))
            return b.finish()

        a, b_, c = build(0), build(0), build(1)
        w = next(iter(a.initializers))
        assert np.array_equal(a.initializers[w], b_.initializers[w])
        assert not np.array_equal(a.initializers[w], c.initializers[w])

    def test_fc_flattens_4d(self):
        b = GraphBuilder("m")
        x = b.input("x", (1, 4, 2, 2))
        y = b.fc(x, 10)
        assert b._current_shape(y) == (1, 10)

    def test_group_divisibility_checked(self):
        b = GraphBuilder("m")
        x = b.input("x", (1, 3, 8, 8))
        with pytest.raises(ValueError, match="divisible"):
            b.conv(x, 4, group=2)

    def test_finish_validates(self):
        b = GraphBuilder("m")
        x = b.input("x", (1, 4))
        b.set_output(b.relu(x))
        model = b.finish()
        model.validate()
        assert len(model.outputs) == 1

    def test_unknown_tensor_query(self):
        b = GraphBuilder("m")
        with pytest.raises(KeyError):
            b._current_shape("ghost")


class TestFlops:
    def test_conv_flops_formula(self):
        b = GraphBuilder("m")
        x = b.input("x", (1, 3, 8, 8))
        b.set_output(b.conv(x, 16, kernel=3, pad=1))
        m = b.finish()
        specs = infer_shapes(m)
        conv = next(n for n in m.nodes if n.op_type == "Conv")
        # 2 * out_elems * C*kh*kw = 2 * (16*8*8) * 27
        assert node_flops(conv, specs) == 2 * 16 * 8 * 8 * 3 * 3 * 3

    def test_gemm_flops_formula(self):
        b = GraphBuilder("m")
        x = b.input("x", (1, 64))
        b.set_output(b.fc(x, 10, flatten=False))
        m = b.finish()
        specs = infer_shapes(m)
        gemm = next(n for n in m.nodes if n.op_type == "Gemm")
        assert node_flops(gemm, specs) == 2 * 10 * 64

    def test_graph_flops_additive(self, small_resnet):
        specs = infer_shapes(small_resnet)
        total = sum(node_flops(n, specs) for n in small_resnet.nodes)
        assert graph_flops(small_resnet) == total

    def test_parameter_bytes(self):
        b = GraphBuilder("m")
        x = b.input("x", (1, 4))
        b.set_output(b.fc(x, 2, flatten=False))  # w: 2x4, b: 2
        assert parameter_bytes(b.finish()) == (8 + 2) * 4

    def test_activation_bytes_positive(self, small_resnet):
        assert graph_activation_bytes(small_resnet) > 0

    def test_humanize(self):
        assert humanize_flops(0) == "0 FLOPs"
        assert humanize_flops(2_500_000_000) == "2.5 GFLOPs"
        assert humanize_flops(999) == "999.0 FLOPs"
