"""Graph IR: validation invariants, topological order, subgraphs, serialization."""

import numpy as np
import pytest

from repro.graph import DataType, GraphBuilder, GraphError, ModelGraph, Node, TensorSpec


def chain_model() -> ModelGraph:
    b = GraphBuilder("chain", seed=0)
    x = b.input("x", (1, 8))
    y = b.relu(b.fc(x, 8, flatten=False))
    z = b.fc(y, 4, flatten=False)
    b.set_output(z)
    return b.finish()


class TestValidation:
    def test_valid_model_passes(self):
        chain_model().validate()

    def test_duplicate_node_names(self):
        m = chain_model()
        m.nodes.append(Node(name=m.nodes[0].name, op_type="Relu",
                            inputs=["x"], outputs=["dup:out"]))
        with pytest.raises(GraphError, match="duplicate node names"):
            m.validate()

    def test_duplicate_tensor_producers(self):
        m = chain_model()
        m.nodes.append(Node(name="evil", op_type="Relu",
                            inputs=["x"], outputs=[m.nodes[0].outputs[0]]))
        with pytest.raises(GraphError, match="produced by both"):
            m.validate()

    def test_unknown_input_tensor(self):
        m = chain_model()
        m.nodes.append(Node(name="orphan", op_type="Relu",
                            inputs=["ghost"], outputs=["o:out"]))
        with pytest.raises(GraphError, match="unknown tensor"):
            m.validate()

    def test_cycle_detected(self):
        m = ModelGraph(
            name="cyclic",
            inputs=[TensorSpec("x", (1, 4))],
            outputs=[TensorSpec("a:out", (1, 4))],
            nodes=[
                Node(name="a", op_type="Add", inputs=["x", "b:out"], outputs=["a:out"]),
                Node(name="b", op_type="Relu", inputs=["a:out"], outputs=["b:out"]),
            ],
        )
        with pytest.raises(GraphError, match="cycle"):
            m.validate()

    def test_missing_output(self):
        m = chain_model()
        m.outputs = [TensorSpec("never", (1, 4))]
        with pytest.raises(GraphError, match="never produced"):
            m.validate()

    def test_node_requires_outputs(self):
        with pytest.raises(ValueError, match="no outputs"):
            Node(name="n", op_type="Relu", inputs=["x"], outputs=[])


class TestTopologicalOrder:
    def test_respects_dependencies(self):
        m = chain_model()
        order = [n.name for n in m.topological_order()]
        producers = m.producers()
        seen = set()
        for node in m.topological_order():
            for inp in node.inputs:
                if inp in producers:
                    assert producers[inp].name in seen
            seen.add(node.name)
        assert len(order) == len(m.nodes)

    def test_deterministic(self):
        m = chain_model()
        assert [n.name for n in m.topological_order()] == [
            n.name for n in m.topological_order()
        ]

    def test_shuffled_input_same_result(self):
        m = chain_model()
        names_before = [n.name for n in m.topological_order()]
        m.nodes = list(reversed(m.nodes))
        m.toposort_inplace()
        m.validate()
        assert {n.name for n in m.nodes} == set(names_before)


class TestSubgraphExtraction:
    def test_boundary_tensors(self, small_resnet):
        order = [n.name for n in small_resnet.topological_order()]
        front = small_resnet.extract_subgraph(order[:5])
        back = small_resnet.extract_subgraph(order[5:])
        front_outs = {s.name for s in front.outputs}
        back_ins = {s.name for s in back.inputs}
        assert front_outs == back_ins

    def test_initializers_copied(self, small_resnet):
        order = [n.name for n in small_resnet.topological_order()]
        sub = small_resnet.extract_subgraph(order[:3])
        for node in sub.nodes:
            for inp in node.inputs:
                if inp in small_resnet.initializers:
                    assert inp in sub.initializers

    def test_unknown_node_rejected(self, small_resnet):
        with pytest.raises(GraphError, match="unknown nodes"):
            small_resnet.extract_subgraph(["not-a-node"])

    def test_graph_output_preserved(self, small_resnet):
        order = [n.name for n in small_resnet.topological_order()]
        sub = small_resnet.extract_subgraph(order[-3:])
        assert {s.name for s in sub.outputs} >= small_resnet.output_names()


class TestSerialization:
    def test_roundtrip_preserves_hashes(self, small_resnet):
        blob = small_resnet.to_bytes()
        restored = ModelGraph.from_bytes(blob)
        assert restored.structural_hash() == small_resnet.structural_hash()
        assert restored.weights_hash() == small_resnet.weights_hash()

    def test_roundtrip_preserves_weights(self):
        m = chain_model()
        restored = ModelGraph.from_bytes(m.to_bytes())
        for name, arr in m.initializers.items():
            assert np.array_equal(restored.initializers[name], arr)

    def test_structural_hash_ignores_weight_values(self):
        a = chain_model()
        b = chain_model()
        first = next(iter(b.initializers))
        b.initializers[first] = b.initializers[first] + 1.0
        assert a.structural_hash() == b.structural_hash()
        assert a.weights_hash() != b.weights_hash()

    def test_copy_is_independent(self):
        m = chain_model()
        c = m.copy()
        c.nodes[0].attrs["marker"] = 1
        assert "marker" not in m.nodes[0].attrs

    def test_summary_mentions_all_nodes(self):
        m = chain_model()
        text = m.summary()
        for node in m.nodes:
            assert node.name in text


class TestTensorSpec:
    def test_nbytes(self):
        spec = TensorSpec("t", (1, 3, 224, 224), DataType.FLOAT32)
        assert spec.nbytes == 1 * 3 * 224 * 224 * 4

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec("t", (1, -3))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec("", (1,))

    def test_json_roundtrip(self):
        spec = TensorSpec("t", (2, 3), DataType.INT64)
        assert TensorSpec.from_json(spec.to_json()) == spec
