"""Shape inference rules for every operator family."""

import numpy as np
import pytest

from repro.graph import GraphBuilder, ModelGraph, Node, ShapeInferenceError, TensorSpec, infer_shapes


def infer_single(op_type: str, input_shapes: list[tuple[int, ...]], attrs: dict) -> tuple[int, ...]:
    inputs = [TensorSpec(f"in{i}", s) for i, s in enumerate(input_shapes)]
    node = Node(
        name="n",
        op_type=op_type,
        inputs=[s.name for s in inputs],
        outputs=["n:out"],
        attrs=attrs,
    )
    model = ModelGraph(name="single", inputs=inputs, outputs=[], nodes=[node])
    return infer_shapes(model)["n:out"].shape


class TestConvShapes:
    def test_same_padding(self):
        b = GraphBuilder("m")
        x = b.input("x", (1, 3, 32, 32))
        y = b.conv(x, 8, kernel=3, pad=1)
        assert b._current_shape(y) == (1, 8, 32, 32)

    def test_stride_2(self):
        b = GraphBuilder("m")
        x = b.input("x", (1, 3, 32, 32))
        y = b.conv(x, 8, kernel=3, stride=2, pad=1)
        assert b._current_shape(y) == (1, 8, 16, 16)

    def test_7x7_stride2_pad3(self):
        b = GraphBuilder("m")
        x = b.input("x", (1, 3, 224, 224))
        y = b.conv(x, 64, kernel=7, stride=2, pad=3)
        assert b._current_shape(y) == (1, 64, 112, 112)

    def test_asymmetric_kernel(self):
        b = GraphBuilder("m")
        x = b.input("x", (1, 4, 17, 17))
        y = b.conv(x, 8, kernel=(1, 7), pad=(0, 3))
        assert b._current_shape(y) == (1, 8, 17, 17)

    def test_depthwise(self):
        b = GraphBuilder("m")
        x = b.input("x", (1, 6, 10, 10))
        y = b.depthwise_conv(x, kernel=3, pad=1)
        assert b._current_shape(y) == (1, 6, 10, 10)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ShapeInferenceError, match="channels"):
            infer_single("Conv", [(1, 3, 8, 8), (4, 5, 3, 3)], {"strides": [1, 1], "pads": [1, 1, 1, 1]})

    def test_collapsed_output_rejected(self):
        with pytest.raises(ShapeInferenceError, match="collapsed"):
            infer_single("Conv", [(1, 3, 2, 2), (4, 3, 5, 5)], {})


class TestPoolShapes:
    def test_maxpool_floor(self):
        assert infer_single("MaxPool", [(1, 4, 7, 7)], {"kernel_shape": [2, 2], "strides": [2, 2]}) == (1, 4, 3, 3)

    def test_maxpool_ceil(self):
        assert infer_single(
            "MaxPool",
            [(1, 4, 7, 7)],
            {"kernel_shape": [2, 2], "strides": [2, 2], "ceil_mode": 1},
        ) == (1, 4, 4, 4)

    def test_global_avg_pool(self):
        assert infer_single("GlobalAveragePool", [(2, 16, 9, 9)], {}) == (2, 16, 1, 1)

    def test_avgpool_padded(self):
        assert infer_single(
            "AveragePool",
            [(1, 4, 8, 8)],
            {"kernel_shape": [3, 3], "strides": [1, 1], "pads": [1, 1, 1, 1]},
        ) == (1, 4, 8, 8)


class TestDenseAndElementwise:
    def test_gemm_transb(self):
        assert infer_single("Gemm", [(1, 64), (10, 64)], {"transB": 1}) == (1, 10)

    def test_gemm_inner_mismatch(self):
        with pytest.raises(ShapeInferenceError, match="inner"):
            infer_single("Gemm", [(1, 64), (32, 10)], {})

    def test_matmul(self):
        assert infer_single("MatMul", [(3, 4), (4, 5)], {}) == (3, 5)

    def test_add_broadcast(self):
        assert infer_single("Add", [(1, 8, 4, 4), (1, 8, 1, 1)], {}) == (1, 8, 4, 4)

    def test_add_incompatible(self):
        with pytest.raises(ShapeInferenceError, match="broadcast"):
            infer_single("Add", [(1, 8), (1, 7)], {})

    def test_unary_preserves(self):
        for op in ("Relu", "Sigmoid", "HardSwish", "Silu", "Softmax", "Identity"):
            assert infer_single(op, [(2, 3, 4)], {}) == (2, 3, 4)


class TestStructuralOps:
    def test_concat(self):
        assert infer_single("Concat", [(1, 3, 8, 8), (1, 5, 8, 8)], {"axis": 1}) == (1, 8, 8, 8)

    def test_concat_mismatch(self):
        with pytest.raises(ShapeInferenceError, match="concat"):
            infer_single("Concat", [(1, 3, 8, 8), (1, 5, 9, 8)], {"axis": 1})

    def test_flatten(self):
        assert infer_single("Flatten", [(2, 3, 4, 5)], {"axis": 1}) == (2, 60)

    def test_reshape_with_minus_one(self):
        assert infer_single("Reshape", [(1, 6, 4)], {"shape": [3, -1]}) == (3, 8)

    def test_reshape_size_mismatch(self):
        with pytest.raises(ShapeInferenceError):
            infer_single("Reshape", [(1, 6)], {"shape": [4, 2]})

    def test_pad(self):
        assert infer_single("Pad", [(1, 2, 4, 4)], {"pads": [0, 0, 1, 1, 0, 0, 1, 1]}) == (1, 2, 6, 6)

    def test_transpose(self):
        assert infer_single("Transpose", [(2, 3, 4)], {"perm": [2, 0, 1]}) == (4, 2, 3)

    def test_squeeze_unsqueeze(self):
        assert infer_single("Squeeze", [(1, 8, 1, 1)], {"axes": [2, 3]}) == (1, 8)
        assert infer_single("Unsqueeze", [(1, 8)], {"axes": [2, 3]}) == (1, 8, 1, 1)

    def test_reduce_mean(self):
        assert infer_single("ReduceMean", [(1, 8, 4, 4)], {"axes": [2, 3], "keepdims": 1}) == (1, 8, 1, 1)
        assert infer_single("ReduceMean", [(1, 8, 4, 4)], {"axes": [2, 3], "keepdims": 0}) == (1, 8)

    def test_unknown_op_rejected(self):
        with pytest.raises(ShapeInferenceError, match="no shape rule"):
            infer_single("Quantum", [(1,)], {})


class TestWholeGraphInference:
    def test_covers_every_tensor(self, small_resnet):
        specs = infer_shapes(small_resnet)
        for node in small_resnet.nodes:
            for out in node.outputs:
                assert out in specs

    def test_matches_execution_shapes(self, small_resnet, small_input, small_resnet_reference):
        specs = infer_shapes(small_resnet)
        for name, arr in small_resnet_reference.items():
            assert specs[name].shape == arr.shape
