"""Channel key ratcheting, input validation, DOT export, batched inputs."""

import numpy as np
import pytest

from repro.crypto.kdf import hkdf_sha256
from repro.mvx import MvteeSystem
from repro.mvx.scheduler import validate_feeds
from repro.tee.channel import ChannelError, SecureChannel
from repro.zoo import build_model


def channel_pair(interval: int):
    key_a = hkdf_sha256(b"ratchet-a", length=32)
    key_b = hkdf_sha256(b"ratchet-b", length=32)
    kwargs = dict(aead_name="chacha20-poly1305", peer_report=None, channel_id="r",
                  rekey_interval=interval)
    sender = SecureChannel(send_key=key_a, recv_key=key_b, **kwargs)
    receiver = SecureChannel(send_key=key_b, recv_key=key_a, **kwargs)
    return sender, receiver


class TestChannelRatchet:
    def test_stream_survives_many_ratchets(self):
        sender, receiver = channel_pair(interval=8)
        for i in range(40):
            payload = f"record-{i}".encode()
            assert receiver.open(sender.protect(payload)) == payload
        assert receiver.generations == 4  # ratchets at 8, 16, 24, 32

    def test_keys_actually_change(self):
        sender, _ = channel_pair(interval=4)
        first_key = sender._send_key
        for _ in range(5):
            sender.protect(b"x")
        assert sender._send_key != first_key

    def test_forward_secrecy(self):
        """An old key cannot open records protected after a ratchet."""
        sender, receiver = channel_pair(interval=4)
        from repro.crypto.aead import get_aead

        old_recv_key = receiver._recv_key
        records = [sender.protect(f"r{i}".encode()) for i in range(6)]
        for record in records[:5]:
            receiver.open(record)
        # Post-ratchet record (seq 5) under the pre-ratchet key fails.
        old_aead = get_aead("chacha20-poly1305", old_recv_key)
        with pytest.raises(Exception):
            old_aead.decrypt((5).to_bytes(12, "big"), records[5], (5).to_bytes(8, "big"))
        # ...while the ratcheted channel opens it fine.
        assert receiver.open(records[5]) == b"r5"

    def test_failed_open_does_not_desync_ratchet(self):
        sender, receiver = channel_pair(interval=4)
        records = [sender.protect(f"r{i}".encode()) for i in range(5)]
        for record in records[:4]:
            receiver.open(record)
        with pytest.raises(ChannelError):
            receiver.open(b"garbage" * 10)  # at the ratchet boundary
        assert receiver.open(records[4]) == b"r4"

    def test_interval_zero_disables(self):
        sender, receiver = channel_pair(interval=0)
        first = sender._send_key
        for i in range(20):
            receiver.open(sender.protect(b"x"))
        assert sender._send_key == first


class TestInputValidation:
    @pytest.fixture(scope="class")
    def system(self, small_resnet):
        return MvteeSystem.deploy(
            small_resnet, num_partitions=2, mvx_partitions={},
            seed=0, verify_partitions=False, verify_variants=False,
        )

    def test_missing_input(self, system):
        with pytest.raises(ValueError, match="missing input"):
            system.infer({})

    def test_unexpected_input(self, system, small_input):
        with pytest.raises(ValueError, match="unexpected input"):
            system.infer({"input": small_input, "backdoor": small_input})

    def test_wrong_shape(self, system):
        bad = np.zeros((1, 3, 8, 8), dtype=np.float32)
        with pytest.raises(ValueError, match="shape"):
            system.infer({"input": bad})

    def test_wrong_dtype(self, system):
        bad = np.zeros((1, 3, 16, 16), dtype=np.float64)
        with pytest.raises(ValueError, match="dtype"):
            system.infer({"input": bad})

    def test_non_array(self, system):
        with pytest.raises(ValueError, match="not an ndarray"):
            validate_feeds(system.monitor, {"input": [[1, 2]]})

    def test_valid_passes(self, system, small_input):
        validate_feeds(system.monitor, {"input": small_input})


class TestDotExport:
    def test_dot_structure(self, tiny_cnn):
        dot = tiny_cnn.to_dot()
        assert dot.startswith('digraph "tiny-cnn"')
        for node in tiny_cnn.nodes:
            assert node.name in dot
        assert "->" in dot

    def test_partition_coloring(self, tiny_cnn):
        from repro.partition import slice_by_indices

        ps = slice_by_indices(tiny_cnn, [3])
        dot = tiny_cnn.to_dot(partition_of=ps.assignment())
        assert "#8dd3c7" in dot  # partition 0 color
        assert "\\np1" in dot


class TestParallelDispatch:
    def test_parallel_matches_serial(self, small_resnet, small_input):
        serial = MvteeSystem.deploy(
            small_resnet, num_partitions=3, mvx_partitions={1: 3},
            seed=0, verify_partitions=False, verify_variants=False,
        )
        parallel = MvteeSystem.deploy(
            small_resnet, num_partitions=3, mvx_partitions={1: 3},
            seed=0, verify_partitions=False, verify_variants=False,
        )
        parallel.monitor.parallel_dispatch = True
        out_s = serial.infer({"input": small_input})
        out_p = parallel.infer({"input": small_input})
        for name in out_s:
            assert np.allclose(out_s[name], out_p[name], atol=1e-6)

    def test_parallel_detection_still_works(self, small_resnet, small_input):
        from repro.mvx import ResponseAction
        from repro.runtime.faults import FaultInjector

        system = MvteeSystem.deploy(
            small_resnet, num_partitions=3, mvx_partitions={1: 3},
            seed=0, verify_partitions=False, verify_variants=False,
        )
        system.monitor.parallel_dispatch = True
        system.monitor.response_action = ResponseAction.DROP_VARIANT
        victim = system.monitor.stage_connections(1)[0]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        system.infer({"input": small_input})
        assert system.monitor.divergence_events()


class TestDeadChannelTransform:
    def test_equivalent_and_layout_changing(self, small_resnet):
        from repro.variants import apply_transforms, verify_equivalent

        transformed = apply_transforms(small_resnet, ["dead-channel-insert"], seed=4)
        verify_equivalent(small_resnet, transformed, trials=1)
        assert transformed.weights_hash() != small_resnet.weights_hash()
        # Some conv gained a channel.
        grew = any(
            transformed.initializers[k].shape != small_resnet.initializers[k].shape
            for k in small_resnet.initializers
            if k in transformed.initializers
        )
        assert grew


class TestBatchedInputs:
    def test_mvx_with_batch_4(self):
        model = build_model("small-resnet", input_size=16, blocks_per_stage=1, batch=4)
        system = MvteeSystem.deploy(
            model, num_partitions=3, mvx_partitions={1: 3},
            seed=0, verify_partitions=False, verify_variants=False,
        )
        x = np.random.default_rng(0).normal(size=(4, 3, 16, 16)).astype(np.float32)
        outputs = system.infer({"input": x})
        out = next(iter(outputs.values()))
        assert out.shape[0] == 4
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-4)
