"""Health watchdog: rule grading, windowing, degrade-and-recover."""

import pytest

from repro.observability.health import (
    HealthMonitor,
    HealthStatus,
    QuantileRule,
    RatioRule,
    default_rules,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import KIND_HEALTH, FlightRecorder


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _monitor(registry, *, rules=None, window_s=60.0, recorder=None):
    return HealthMonitor(
        registry,
        rules,
        window_s=window_s,
        recorder=recorder,
        clock=FakeClock(),
    )


class TestRatioRule:
    def _evaluate(self, divergences, checkpoints, **thresholds):
        registry = MetricsRegistry()
        rule = RatioRule(
            "divergence-rate",
            numerator="mvtee_divergences_total",
            denominators=("mvtee_checkpoints_total",),
            **thresholds,
        )
        clock = FakeClock()
        monitor = HealthMonitor(registry, (rule,), clock=clock)
        monitor.evaluate()  # baseline snapshot
        if checkpoints:
            registry.counter("mvtee_checkpoints_total", "h").inc(checkpoints)
        if divergences:
            registry.counter("mvtee_divergences_total", "h").inc(divergences)
        clock.advance(1.0)
        return monitor.evaluate()

    def test_quiet_window_is_ok(self):
        report = self._evaluate(0, 0, warn=0.02, crit=0.2)
        assert report.status is HealthStatus.OK

    def test_low_rate_is_ok(self):
        report = self._evaluate(1, 100, warn=0.02, crit=0.2)
        assert report.status is HealthStatus.OK

    def test_warn_threshold(self):
        report = self._evaluate(5, 100, warn=0.02, crit=0.2)
        assert report.status is HealthStatus.WARN
        assert any("divergence-rate" in r for r in report.reasons)

    def test_crit_threshold(self):
        report = self._evaluate(30, 100, warn=0.02, crit=0.2)
        assert report.status is HealthStatus.CRIT

    def test_summed_denominators(self):
        registry = MetricsRegistry()
        rule = RatioRule(
            "shed-rate",
            numerator="mvtee_requests_shed_total",
            denominators=(
                "mvtee_requests_served_total",
                "mvtee_requests_shed_total",
            ),
            warn=0.05,
            crit=0.5,
        )
        clock = FakeClock()
        monitor = HealthMonitor(registry, (rule,), clock=clock)
        monitor.evaluate()
        registry.counter("mvtee_requests_served_total", "h").inc(90)
        registry.counter("mvtee_requests_shed_total", "h").inc(10)
        clock.advance(1.0)
        report = monitor.evaluate()
        assert report.results[0].value == pytest.approx(0.1)
        assert report.status is HealthStatus.WARN


class TestQuantileRule:
    def _evaluate(self, observations, *, q=0.95, warn=1.0, crit=5.0):
        registry = MetricsRegistry()
        rule = QuantileRule(
            "stage-latency", histogram="mvtee_stage_seconds", q=q, warn=warn, crit=crit
        )
        clock = FakeClock()
        monitor = HealthMonitor(registry, (rule,), clock=clock)
        monitor.evaluate()
        histogram = registry.histogram("mvtee_stage_seconds", "h")
        for value in observations:
            histogram.observe(value)
        clock.advance(1.0)
        return monitor.evaluate()

    def test_no_data_is_ok(self):
        report = self._evaluate([])
        assert report.status is HealthStatus.OK
        assert "no data" in report.results[0].reason or (
            "no observations" in report.results[0].reason
        )

    def test_fast_latencies_ok(self):
        report = self._evaluate([0.001] * 100)
        assert report.status is HealthStatus.OK

    def test_slow_tail_warns(self):
        report = self._evaluate([0.001] * 50 + [2.0] * 50)
        assert report.status is HealthStatus.WARN
        assert report.results[0].value >= 1.0

    def test_crit_latency(self):
        report = self._evaluate([8.0] * 100, warn=1.0, crit=5.0)
        assert report.status is HealthStatus.CRIT


class TestWindowing:
    def test_only_windowed_increase_counts(self):
        # Counts accumulated before the window opened must not trip the
        # rule: the watchdog grades deltas, not lifetime totals.
        registry = MetricsRegistry()
        registry.counter("mvtee_divergences_total", "h").inc(1000)
        registry.counter("mvtee_checkpoints_total", "h").inc(1000)
        monitor = _monitor(registry, rules=default_rules())
        report = monitor.evaluate()
        assert report.status is HealthStatus.OK

    def test_degrade_then_recover(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder()
        clock = FakeClock()
        monitor = HealthMonitor(
            registry,
            default_rules(),
            window_s=60.0,
            recorder=recorder,
            clock=clock,
        )
        assert monitor.evaluate().status is HealthStatus.OK
        # Sustained injected divergence: every checkpoint diverges.
        registry.counter("mvtee_checkpoints_total", "h").inc(10)
        registry.counter("mvtee_divergences_total", "h").inc(10)
        clock.advance(5.0)
        assert monitor.evaluate().status is HealthStatus.CRIT
        gauge = registry.gauge("mvtee_health_status", "h")
        assert gauge.value() == 2
        # Quiet period: the bad samples age out of the window.
        clock.advance(120.0)
        assert monitor.evaluate().status is HealthStatus.OK
        assert gauge.value() == 0
        transitions = recorder.events(KIND_HEALTH)
        assert [t.data["status"] for t in transitions] == ["ok", "crit", "ok"]
        assert transitions[1].data["previous"] == "ok"
        assert transitions[1].data["reasons"]

    def test_shed_and_timeout_storm_without_flapping(self):
        # A serving-layer overload storm: a burst of shed + timed-out
        # requests drives the watchdog to CRIT, a quiet period recovers
        # it to OK, and the rolling window never flaps in between --
        # exactly one ok -> crit -> ok arc in the flight recorder.
        registry = MetricsRegistry()
        recorder = FlightRecorder()
        clock = FakeClock()
        monitor = HealthMonitor(
            registry,
            default_rules(),
            window_s=60.0,
            recorder=recorder,
            clock=clock,
        )
        served = registry.counter("mvtee_requests_served_total", "h")
        shed = registry.counter("mvtee_requests_shed_total", "h")
        timeout = registry.counter("mvtee_requests_timeout_total", "h")
        assert monitor.evaluate().status is HealthStatus.OK
        # The storm: for 20s the engine sheds or times out most arrivals.
        for _ in range(10):
            served.inc(2)
            shed.inc(5)
            timeout.inc(3)
            clock.advance(2.0)
            assert monitor.evaluate().status is HealthStatus.CRIT
        # Storm ends; healthy traffic resumes.  Within the rolling window
        # the storm samples still dominate the ratio, so the status must
        # hold (no premature OK flap) until they age out.
        statuses = []
        for _ in range(40):
            served.inc(5)
            clock.advance(5.0)
            statuses.append(monitor.evaluate().status)
        assert statuses[-1] is HealthStatus.OK
        # Monotone recovery: once the grade improves it never falls back.
        order = {HealthStatus.OK: 0, HealthStatus.WARN: 1, HealthStatus.CRIT: 2}
        ranks = [order[s] for s in statuses]
        assert ranks == sorted(ranks, reverse=True)
        transitions = [t.data["status"] for t in recorder.events(KIND_HEALTH)]
        assert transitions[0] == "ok" and transitions[1] == "crit"
        assert transitions[-1] == "ok"
        # No flapping: each status appears in one contiguous run.
        deduped = [transitions[0]]
        for status in transitions[1:]:
            if status != deduped[-1]:
                deduped.append(status)
        assert deduped == transitions
        assert registry.gauge("mvtee_health_status", "h").value() == 0

    def test_transition_recorded_only_on_change(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder()
        monitor = _monitor(registry, rules=default_rules(), recorder=recorder)
        for _ in range(5):
            monitor.evaluate()
        assert len(recorder.events(KIND_HEALTH)) == 1  # the initial None -> ok

    def test_status_property(self):
        monitor = _monitor(MetricsRegistry(), rules=default_rules())
        assert monitor.status is None
        monitor.evaluate()
        assert monitor.status is HealthStatus.OK


class TestServiceHealthz:
    def test_healthz_degrades_and_recovers(self, deployed_system, small_input):
        from repro.mvx.service import InferenceService

        service = InferenceService(deployed_system)
        clock = FakeClock()
        service._health = HealthMonitor(
            service.registry, window_s=60.0, clock=clock
        )
        report = service.healthz()
        assert report.status is HealthStatus.OK
        # Sustained injected divergence rate on the service registry.
        service.registry.counter("mvtee_checkpoints_total", "h").inc(20)
        service.registry.counter("mvtee_divergences_total", "h").inc(20)
        clock.advance(5.0)
        assert service.healthz().status is HealthStatus.CRIT
        clock.advance(300.0)
        assert service.healthz().status is HealthStatus.OK

    def test_healthz_builds_default_monitor(self, deployed_system):
        from repro.mvx.service import InferenceService

        service = InferenceService(deployed_system)
        report = service.healthz()
        assert report.status is HealthStatus.OK
        assert "mvtee_health_status" in service.render_prometheus()
