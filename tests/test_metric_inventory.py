"""The documented metric inventory and the registered set stay in sync.

README.md carries a table of every ``mvtee_*`` metric the deployment
can emit.  This test drives a full traced/metered pass through the
system -- deployment over a fabric transport, a faulted inference that
trips detection and forensics, a concurrent serving pass, the adaptive
controller and the health watchdog -- and asserts both directions:

- every metric registered anywhere during the pass is documented;
- every documented metric was actually registered (no stale rows).
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.chaos import register_chaos_metrics
from repro.fleet import ModelFleet, SLOClass, TenantSpec
from repro.mvx import FabricTransport, MvteeSystem, ResponseAction
from repro.mvx.adaptive import AdaptiveController
from repro.mvx.service import InferenceService
from repro.observability import (
    FlightRecorder,
    MetricsRegistry,
    Sinks,
    Tracer,
    get_global_registry,
    set_global_registry,
)
from repro.runtime.faults import FaultInjector
from repro.zoo import build_model

README = Path(__file__).resolve().parent.parent / "README.md"

ROW = re.compile(r"^\| `(mvtee_[a-z0-9_]+)` \| (counter|gauge|histogram) \|")


def documented_inventory() -> dict[str, str]:
    """Metric name -> kind, parsed from the README table."""
    inventory = {}
    for line in README.read_text(encoding="utf-8").splitlines():
        match = ROW.match(line.strip())
        if match:
            inventory[match.group(1)] = match.group(2)
    return inventory


@pytest.fixture(scope="module")
def exercised_registry():
    """One registry that saw a full inference + serving + ops pass."""
    registry = MetricsRegistry()
    # Components without an explicit sink (variant hosts, transports)
    # report to the process-wide registry: swap it for the pass.
    saved = get_global_registry()
    set_global_registry(registry)
    try:
        model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
        system = MvteeSystem.deploy(
            model,
            num_partitions=3,
            mvx_partitions={1: 3},
            seed=0,
            verify_partitions=False,
            verify_variants=False,
            transport=FabricTransport(),
            sinks=Sinks(
                tracer=Tracer(),
                metrics=registry,
                recorder=FlightRecorder(),
            ),
        )
        system.monitor.response_action = ResponseAction.DROP_VARIANT
        feeds = {
            "input": np.random.default_rng(0)
            .normal(size=(1, 3, 16, 16))
            .astype(np.float32)
        }
        # A faulted inference: divergence detection, forensics, recovery.
        victim = system.monitor.stage_connections(1)[2]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        system.infer(feeds)
        # A crashing variant: crash detection counters.
        crasher = system.monitor.stage_connections(1)[1]
        FaultInjector(crasher.host.runtime).arm_op_crash(
            "Conv", lambda node, inputs: True
        )
        system.infer(feeds)
        # A concurrent serving pass over the same registry.
        service = InferenceService(system, registry=registry)
        with service.serve(max_batch_size=2, max_wait_s=0.001):
            ids = [service.submit(feeds) for _ in range(3)]
            for request_id in ids:
                service.wait(request_id, timeout=30.0)
        # A synchronous drain: the service-level batch/checkpoint totals.
        service.submit(feeds)
        service.drain()
        # Operational surfaces: adaptive scaling and the health verdict.
        AdaptiveController(system, metrics=registry).observe()
        service.healthz()
        # A process-cluster pass: worker supervision + shm lane metrics.
        cluster_system = MvteeSystem.deploy(
            model,
            num_partitions=2,
            seed=0,
            verify_partitions=False,
            verify_variants=False,
            execution="process",
            sinks=Sinks(metrics=registry),
        )
        try:
            cluster_system.infer(feeds)
            # Force the shm lane (tiny threshold) for one round trip.
            for worker in cluster_system.cluster.workers().values():
                worker.shm_threshold = 1
            cluster_system.infer(feeds)
        finally:
            cluster_system.shutdown()
        # A fleet pass: weighted-fair admission, tenant metrics, the
        # autoscaler and a rolling update -- against the same registry
        # so the mvtee_tenant_*/fleet names join the exercised set.
        fleet = ModelFleet(quota_rps_per_weight=1000.0, registry=registry)
        try:
            fleet.register(
                TenantSpec(
                    name="inventory",
                    model="tiny-mlp",
                    slo=SLOClass.LATENCY,
                    verify_partitions=False,
                    verify_variants=False,
                )
            )
            tenant_feeds = {
                "input": np.random.default_rng(1)
                .normal(size=(1, 32))
                .astype(np.float32)
            }
            fleet.front_door.submit("inventory", tenant_feeds).result(
                timeout=30.0
            )
            fleet.start_autoscaler(interval_s=60.0).step()
            fleet.rolling_update("inventory", seed=3)
            fleet.healthz()
        finally:
            fleet.shutdown()
        # The chaos campaign family: a full campaign is live-exercised in
        # tests/test_chaos.py; here the registration pass is enough to
        # keep the inventory honest in both directions.
        register_chaos_metrics(registry)
        yield registry
    finally:
        set_global_registry(saved)


class TestMetricInventory:
    def test_readme_table_parses(self):
        inventory = documented_inventory()
        assert len(inventory) >= 20, "README metric table missing or mangled"

    def test_every_registered_metric_is_documented(self, exercised_registry):
        documented = documented_inventory()
        registered = {
            name
            for name in exercised_registry.names()
            if name.startswith("mvtee_")
        }
        undocumented = registered - set(documented)
        assert not undocumented, (
            f"metrics registered but missing from the README inventory: "
            f"{sorted(undocumented)}"
        )

    def test_every_documented_metric_is_registered(self, exercised_registry):
        documented = documented_inventory()
        registered = set(exercised_registry.names())
        stale = set(documented) - registered
        assert not stale, (
            f"metrics documented in README but never registered by a full "
            f"pass: {sorted(stale)}"
        )

    def test_documented_kinds_match(self, exercised_registry):
        documented = documented_inventory()
        for name, kind in documented.items():
            instrument = exercised_registry.get(name)
            if instrument is not None:
                assert instrument.kind == kind, (
                    f"{name}: README says {kind}, registry has {instrument.kind}"
                )

    def test_source_names_match_documentation(self):
        # Belt and braces: every mvtee_* string literal in src/ appears
        # in the table, catching metrics the exercise pass cannot reach.
        documented = set(documented_inventory())
        src = Path(__file__).resolve().parent.parent / "src"
        in_source = set()
        for path in src.rglob("*.py"):
            in_source.update(
                re.findall(r'"(mvtee_[a-z0-9_]+)"', path.read_text(encoding="utf-8"))
            )
        assert in_source <= documented, (
            f"metrics in source but not documented: {sorted(in_source - documented)}"
        )
