"""Coverage for small surfaces: stats, cost model, pool images, dtypes."""

import numpy as np
import pytest

from repro.graph.dtypes import DataType
from repro.mvx.scheduler import run
from repro.simulation import CostModel
from repro.simulation.pipeline import StagePlan, VariantSim


class TestCostModelUnits:
    COST = CostModel()

    def test_compute_time_linear_in_flops(self):
        assert self.COST.compute_time(2e9) == pytest.approx(2 * self.COST.compute_time(1e9))

    def test_runtime_factor_speeds_up(self):
        assert self.COST.compute_time(1e9, 2.0) == pytest.approx(
            self.COST.compute_time(1e9) / 2
        )

    def test_transfer_encrypted_costs_more(self):
        plain = self.COST.transfer_time(10**6, encrypted=False)
        enc = self.COST.transfer_time(10**6, encrypted=True)
        assert enc > plain

    def test_verify_time_scales_with_pairs(self):
        one = self.COST.verify_time(10**6, 1)
        four = self.COST.verify_time(10**6, 4)
        assert four > one

    def test_stage_plan_requires_variants(self):
        with pytest.raises(ValueError, match="no variants"):
            StagePlan(index=0, flops=1.0, output_bytes=1, variants=[], slow_path=False)

    def test_variant_sim_defaults(self):
        assert VariantSim("v").runtime_factor == 1.0


class TestDataTypes:
    def test_numpy_mapping(self):
        assert DataType.FLOAT32.numpy == np.dtype("float32")
        assert DataType.INT64.itemsize == 8

    def test_from_numpy_roundtrip(self):
        for dt in DataType:
            assert DataType.from_numpy(dt.numpy) is dt

    def test_unsupported_dtype(self):
        with pytest.raises(ValueError, match="unsupported"):
            DataType.from_numpy(np.dtype("complex64"))


class TestRunStatsTimings:
    def test_stage_timings_recorded(self, deployed_system, small_input):
        results, stats = run(deployed_system.monitor, [{"input": small_input}])
        timings = stats.extra["stage_seconds"]
        assert set(timings) == {0, 1, 2}
        assert all(t > 0 for t in timings.values())
        # The 3-variant MVX stage costs more wall time than fast-path stages.
        assert timings[1] > timings[2]


class TestPoolHygiene:
    def test_distinct_variant_keys(self, deployed_system):
        keys = {
            artifact.key_record.key
            for artifacts in deployed_system.pool.artifacts.values()
            for artifact in artifacts
        }
        assert len(keys) == deployed_system.pool.total_variants()

    def test_artifact_models_match_partition_boundaries(self, deployed_system):
        ps = deployed_system.partition_set
        for index, artifacts in deployed_system.pool.artifacts.items():
            expected_out = {s.name for s in ps.subgraph(index).outputs}
            for artifact in artifacts:
                assert {s.name for s in artifact.model.outputs} == expected_out

    def test_variant_ids_unique(self, deployed_system):
        ids = [
            a.variant_id
            for artifacts in deployed_system.pool.artifacts.values()
            for a in artifacts
        ]
        assert len(set(ids)) == len(ids)
