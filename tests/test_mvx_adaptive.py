"""Adaptive scaling, fork-attack prevention, variant retirement,
oblivious record padding."""

import numpy as np
import pytest

from repro.mvx import AdaptiveController, MonitorError, MvteeSystem, ResponseAction
from repro.mvx.variant_host import VariantHost
from repro.runtime.faults import FaultInjector
from repro.tee.channel import SecureChannel
from repro.zoo import build_model


@pytest.fixture()
def system(small_resnet):
    deployed = MvteeSystem.deploy(
        small_resnet,
        num_partitions=3,
        mvx_partitions={1: 3},
        seed=0,
        verify_partitions=False,
        verify_variants=False,
    )
    deployed.monitor.response_action = ResponseAction.DROP_VARIANT
    return deployed


class TestAdaptiveController:
    def test_quiet_period_scales_down_to_floor(self, system, small_input):
        controller = AdaptiveController(system)
        for _ in range(4):
            system.infer({"input": small_input})
            controller.observe()
        # No threats: the MVX partition shrinks to its protection floor (2).
        assert len(system.monitor.stage_connections(1)) == 2
        assert any(a.action == "scale-down" for a in controller.actions)

    def test_attack_triggers_scale_up(self, system, small_input):
        controller = AdaptiveController(system, scale_down_threshold=-1.0)
        victim = system.monitor.stage_connections(1)[0]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        system.infer({"input": small_input})  # divergence -> victim dropped
        actions = controller.observe()
        assert any(a.action == "scale-up" and a.partition_index == 1 for a in actions)
        assert len(system.monitor.stage_connections(1)) == 3  # 2 survivors + 1 new

    def test_scores_decay(self, system, small_input):
        controller = AdaptiveController(system, decay=0.0, scale_down_threshold=-1.0)
        victim = system.monitor.stage_connections(1)[0]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        system.infer({"input": small_input})
        controller.observe()  # consumes the event, scales up
        actions = controller.observe()  # score decayed to zero
        assert not any(a.action == "scale-up" for a in actions)

    def test_fast_path_partitions_not_scaled_below_one(self, system, small_input):
        controller = AdaptiveController(system)
        for _ in range(5):
            system.infer({"input": small_input})
            controller.observe()
        assert len(system.monitor.stage_connections(0)) == 1
        assert len(system.monitor.stage_connections(2)) == 1

    def test_respects_max_variants(self, system, small_input):
        controller = AdaptiveController(system, max_variants=3, scale_down_threshold=-1)
        victim = system.monitor.stage_connections(1)[0]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        system.infer({"input": small_input})
        controller.observe()
        count = len(system.monitor.stage_connections(1))
        assert count <= 3


class TestForkAttackPrevention:
    def test_double_binding_rejected(self, system):
        artifact = system.pool.for_partition(1)[0]
        clone = VariantHost.place(artifact, system.orchestrator._pick_cpu())
        with pytest.raises(MonitorError, match="fork attack"):
            system.monitor._bootstrap_variant(1, artifact, clone, "init")

    def test_rebinding_after_retire_allowed(self, system, small_input):
        victim = system.monitor.stage_connections(1)[0]
        artifact = next(
            a for a in system.pool.for_partition(1) if a.variant_id == victim.variant_id
        )
        system.monitor.retire_variant(victim.variant_id)
        fresh = VariantHost.place(
            artifact, system.orchestrator._pick_cpu(), enclave_id="fresh-tee"
        )
        system.monitor._bootstrap_variant(1, artifact, fresh, "update")
        assert system.infer({"input": small_input})


class TestRetireVariant:
    def test_retire_removes_and_logs(self, system):
        victim = system.monitor.stage_connections(1)[0]
        system.monitor.retire_variant(victim.variant_id)
        assert victim.variant_id not in [
            c.variant_id for c in system.monitor.stage_connections(1)
        ]
        assert victim.host.crashed
        assert system.monitor.ledger.entries[-1].event == "retire"
        system.monitor.ledger.verify_chain()

    def test_retire_unknown_rejected(self, system):
        with pytest.raises(MonitorError, match="no bound variant"):
            system.monitor.retire_variant("ghost")


class TestObliviousChannels:
    @staticmethod
    def _pair(oblivious: bool):
        from repro.crypto.kdf import hkdf_sha256

        key_a = hkdf_sha256(b"a", length=32)
        key_b = hkdf_sha256(b"b", length=32)
        sender = SecureChannel(
            send_key=key_a, recv_key=key_b, aead_name="chacha20-poly1305",
            peer_report=None, channel_id="t", oblivious=oblivious,
        )
        receiver = SecureChannel(
            send_key=key_b, recv_key=key_a, aead_name="chacha20-poly1305",
            peer_report=None, channel_id="t", oblivious=oblivious,
        )
        return sender, receiver

    def test_roundtrip(self):
        sender, receiver = self._pair(True)
        for payload in (b"", b"x", b"y" * 1000, b"z" * 300):
            assert receiver.open(sender.protect(payload)) == payload

    def test_sizes_bucketed(self):
        sender, _ = self._pair(True)
        sizes = {len(sender.protect(bytes(n))) for n in (1, 50, 100, 200)}
        # 1..200 byte payloads (+8B frame) all fit the 256B bucket.
        assert len(sizes) == 1

    def test_distinct_buckets_for_large(self):
        sender, _ = self._pair(True)
        small = len(sender.protect(bytes(100)))
        large = len(sender.protect(bytes(10_000)))
        assert large > small
        # Bucket sizes are powers of two times MIN_BUCKET.
        assert (large - 16) % 256 == 0

    def test_non_oblivious_leaks_exact_size(self):
        sender, _ = self._pair(False)
        a = len(sender.protect(bytes(100)))
        b = len(sender.protect(bytes(101)))
        assert b == a + 1
