"""MVX configuration and consistency metrics."""

import numpy as np
import pytest

from repro.mvx.config import MvxConfig, PartitionClaim
from repro.mvx.consistency import (
    ConsistencyPolicy,
    cosine_similarity,
    max_abs_diff,
    mean_squared_error,
)


class TestPartitionClaim:
    def test_mvx_enabled_threshold(self):
        assert not PartitionClaim(0, 1).mvx_enabled
        assert PartitionClaim(0, 2).mvx_enabled

    def test_zero_variants_rejected(self):
        with pytest.raises(ValueError):
            PartitionClaim(0, 0)

    def test_json_roundtrip(self):
        claim = PartitionClaim(2, 3, selection_seed=7)
        assert PartitionClaim.from_json(claim.to_json()) == claim


class TestMvxConfig:
    def test_uniform(self):
        config = MvxConfig.uniform(5, 3)
        assert config.total_variants() == 15
        assert config.mvx_partition_indices() == [0, 1, 2, 3, 4]

    def test_selective(self):
        config = MvxConfig.selective(5, {2: 3})
        assert config.total_variants() == 7
        assert config.mvx_partition_indices() == [2]

    def test_hybrid_path_rule(self):
        config = MvxConfig.selective(3, {1: 3})
        assert not config.uses_slow_path(0)
        assert config.uses_slow_path(1)

    def test_forced_paths(self):
        slow = MvxConfig.uniform(2, 1, path_mode="slow")
        fast = MvxConfig.uniform(2, 3, path_mode="fast")
        assert slow.uses_slow_path(0)
        assert not fast.uses_slow_path(0)

    def test_json_roundtrip(self):
        config = MvxConfig(
            claims=(
                PartitionClaim(0, 1),
                PartitionClaim(1, 3, selection_seed=5),
                PartitionClaim(2, 2),
            ),
            voting="majority",
            execution_mode="async",
            path_mode="slow",
            consistency={"cosine_threshold": 0.999},
        )
        assert MvxConfig.from_json(config.to_json()) == config

    def test_json_roundtrip_survives_serialization(self):
        import json

        config = MvxConfig.selective(3, {1: 3}, voting="plurality")
        assert MvxConfig.from_json(json.loads(json.dumps(config.to_json()))) == config

    def test_claims_must_cover_partitions(self):
        with pytest.raises(ValueError, match="cover partitions"):
            MvxConfig(claims=(PartitionClaim(0, 1), PartitionClaim(2, 1)))

    def test_invalid_enums_rejected(self):
        with pytest.raises(ValueError):
            MvxConfig.uniform(2, 1, voting="dictatorship")
        with pytest.raises(ValueError):
            MvxConfig.uniform(2, 1, execution_mode="warp")
        with pytest.raises(ValueError):
            MvxConfig.uniform(2, 1, path_mode="medium")

    def test_json_roundtrip(self):
        config = MvxConfig.selective(
            4, {1: 3, 2: 5}, voting="majority", execution_mode="async",
            consistency={"min_cosine": 0.99},
        )
        assert MvxConfig.from_json(config.to_json()) == config


class TestMetrics:
    def test_cosine_identical(self):
        x = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(x, x) == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_cosine_zero_vectors(self):
        assert cosine_similarity(np.zeros(3), np.zeros(3)) == 1.0
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_mse(self):
        assert mean_squared_error(np.array([1.0, 3.0]), np.array([2.0, 1.0])) == pytest.approx(2.5)

    def test_max_abs(self):
        assert max_abs_diff(np.array([1.0, -5.0]), np.array([1.5, 0.0])) == 5.0


class TestConsistencyPolicy:
    def test_identical_pass(self):
        policy = ConsistencyPolicy()
        x = np.random.default_rng(0).normal(size=(4, 4)).astype(np.float32)
        report = policy.check_tensor("t", x, x)
        assert report.consistent
        assert report.allclose

    def test_small_noise_tolerated(self):
        policy = ConsistencyPolicy()
        rng = np.random.default_rng(0)
        x = rng.normal(size=100).astype(np.float32)
        y = x + rng.normal(scale=1e-5, size=100).astype(np.float32)
        assert policy.check_tensor("t", x, y).consistent

    def test_gross_corruption_flagged(self):
        policy = ConsistencyPolicy()
        x = np.ones(10, dtype=np.float32)
        y = x.copy()
        y[0] = 100.0
        report = policy.check_tensor("t", x, y)
        assert not report.consistent
        assert "max_abs" in report.reason

    def test_shape_mismatch(self):
        policy = ConsistencyPolicy()
        report = policy.check_tensor("t", np.ones(3), np.ones(4))
        assert not report.consistent
        assert "shape" in report.reason

    def test_nan_flagged(self):
        policy = ConsistencyPolicy()
        x = np.ones(4, dtype=np.float32)
        y = x.copy()
        y[2] = np.nan
        report = policy.check_tensor("t", x, y)
        assert not report.consistent
        assert "non-finite" in report.reason

    def test_output_key_mismatch(self):
        policy = ConsistencyPolicy()
        reports = policy.check_outputs({"a": np.ones(2)}, {"b": np.ones(2)})
        assert not reports[0].consistent

    def test_thresholds_tunable(self):
        loose = ConsistencyPolicy(min_cosine=0.0, max_mse=1e9, max_abs=1e9,
                                  use_allclose=False)
        x = np.ones(4)
        y = x * 3
        assert loose.check_tensor("t", x, y).consistent

    def test_from_kwargs(self):
        policy = ConsistencyPolicy.from_kwargs({"min_cosine": 0.5})
        assert policy.min_cosine == 0.5
