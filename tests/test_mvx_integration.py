"""Integration: bootstrap protocol, MVX inference, detection, updates.

These tests exercise the full monitor <-> variant machinery on a real
(small) model with real attested channels and sealed artifacts.
"""

import numpy as np
import pytest

from repro.attacks.cves import TABLE1_CVES, craft_malicious_input
from repro.mvx import MonitorError, MvteeSystem, ResponseAction
from repro.mvx.scheduler import InferenceOptions, SchedulingMode, run
from repro.mvx.wire import decode_message, encode_message
from repro.runtime.faults import FaultInjector


@pytest.fixture()
def fresh_system(small_resnet):
    return MvteeSystem.deploy(
        small_resnet,
        num_partitions=3,
        mvx_partitions={1: 3},
        seed=0,
        verify_partitions=False,
        verify_variants=False,
    )


class TestWire:
    def test_roundtrip_with_tensors(self):
        tensors = {"x": np.arange(6, dtype=np.float32).reshape(2, 3)}
        msg = encode_message("infer", {"batch_id": 3}, tensors)
        msg_type, meta, restored = decode_message(msg)
        assert msg_type == "infer"
        assert meta["batch_id"] == 3
        assert np.array_equal(restored["x"], tensors["x"])

    def test_roundtrip_without_tensors(self):
        msg_type, meta, tensors = decode_message(encode_message("terminate", {}))
        assert msg_type == "terminate"
        assert tensors == {}


class TestBootstrapProtocol:
    def test_deployment_reaches_stage2(self, deployed_system):
        for hosts in deployed_system.monitor.connections.values():
            for connection in hosts:
                assert connection.host.enclave.os.stage == 2
                assert connection.host.runtime is not None

    def test_variant_counts_match_config(self, deployed_system):
        live = deployed_system.live_variants()
        assert len(live[0]) == 1
        assert len(live[1]) == 3
        assert len(live[2]) == 1

    def test_ledger_records_all_variants(self, deployed_system):
        deployed_system.monitor.ledger.verify_chain()
        active = deployed_system.monitor.ledger.active_bindings()
        assert len(active) == 5

    def test_provisioning_nonce_replay_rejected(self, deployed_system):
        monitor = deployed_system.monitor
        used_nonce = next(iter(monitor._provision_nonces))
        with pytest.raises(MonitorError, match="replayed"):
            monitor.provision_config(deployed_system.config, used_nonce)

    def test_orchestrator_cannot_read_private_files(self, deployed_system):
        # Every non-init file the orchestrator handles is sealed.
        for artifacts in deployed_system.pool.artifacts.values():
            for artifact in artifacts:
                for path, content in artifact.host_files.items():
                    if path == artifact.paths["init"]:
                        continue
                    assert artifact.model.to_bytes() not in content
                    assert b'"magic": "mvtee-sealed-v1"' in content

    def test_monitor_enclave_is_sgx1(self, deployed_system):
        # §6.5: the monitor prefers the small integrity-enhanced TEE.
        assert deployed_system.monitor.enclave.tee_type.value == "sgx1"


class TestInference:
    def test_matches_reference(self, deployed_system, small_input, small_resnet_reference):
        outputs = deployed_system.infer({"input": small_input})
        for name, expected in small_resnet_reference.items():
            assert np.allclose(outputs[name], expected, atol=1e-2)

    def test_sequential_and_pipelined_agree(self, deployed_system, small_input):
        rng = np.random.default_rng(1)
        batches = [
            {"input": rng.normal(size=(1, 3, 16, 16)).astype(np.float32)}
            for _ in range(4)
        ]
        seq, _ = run(deployed_system.monitor, batches)
        pipe, _ = run(
            deployed_system.monitor,
            batches,
            InferenceOptions(scheduling=SchedulingMode.PIPELINED),
        )
        for a, b in zip(seq, pipe):
            for name in a:
                assert np.allclose(a[name], b[name], atol=1e-5)

    def test_stats_counted(self, deployed_system, small_input):
        deployed_system.infer({"input": small_input})
        stats = deployed_system.last_stats
        assert stats.batches == 1
        assert stats.stage_executions == 3
        assert stats.checkpoints_evaluated == 1  # only the MVX partition

    def test_async_mode_agrees_with_sync(self, small_resnet, small_input):
        from repro.mvx.config import MvxConfig

        system = MvteeSystem.deploy(
            small_resnet,
            num_partitions=3,
            config=MvxConfig.selective(3, {1: 3}, execution_mode="async"),
            seed=0,
            verify_partitions=False,
            verify_variants=False,
        )
        # vary latencies so the quorum order is meaningful
        for i, connection in enumerate(system.monitor.stage_connections(1)):
            connection.host.simulated_latency = float(i)
        sync_ref = MvteeSystem.deploy(
            small_resnet, num_partitions=3, mvx_partitions={1: 3}, seed=0,
            verify_partitions=False, verify_variants=False,
        ).infer({"input": small_input})
        outputs = system.infer({"input": small_input})
        for name in sync_ref:
            assert np.allclose(outputs[name], sync_ref[name], atol=1e-2)


class TestDetectionAndResponse:
    def test_divergence_halts_by_default(self, fresh_system, small_input):
        connection = fresh_system.monitor.stage_connections(1)[0]
        FaultInjector(connection.host.runtime).arm_backend_bitflip(bit=30)
        with pytest.raises(MonitorError, match="vote failed"):
            fresh_system.infer({"input": small_input})
        assert fresh_system.monitor.divergence_events()

    def test_drop_variant_continues(self, fresh_system, small_input, small_resnet_reference):
        fresh_system.monitor.response_action = ResponseAction.DROP_VARIANT
        connection = fresh_system.monitor.stage_connections(1)[1]
        FaultInjector(connection.host.runtime).arm_backend_bitflip(bit=30)
        outputs = fresh_system.infer({"input": small_input})
        name = next(iter(small_resnet_reference))
        assert np.allclose(outputs[name], small_resnet_reference[name], atol=1e-2)
        assert len(fresh_system.monitor.stage_connections(1)) == 2
        retired = [e for e in fresh_system.monitor.ledger.entries if e.event == "retire"]
        assert len(retired) == 1

    def test_crash_detected(self, fresh_system, small_input):
        fresh_system.monitor.response_action = ResponseAction.DROP_VARIANT
        connection = fresh_system.monitor.stage_connections(1)[0]
        case = next(c for c in TABLE1_CVES if c.vulnerable_op == "Conv")
        case.arm(connection.host.runtime)
        evil = craft_malicious_input((1, 3, 16, 16))
        fresh_system.infer({"input": evil})
        assert fresh_system.monitor.crash_events()

    def test_fast_path_variant_failure_is_fatal(self, fresh_system, small_input):
        connection = fresh_system.monitor.stage_connections(0)[0]
        case = next(c for c in TABLE1_CVES if c.vulnerable_op == "Conv")
        case.arm(connection.host.runtime)
        evil = craft_malicious_input((1, 3, 16, 16))
        with pytest.raises(MonitorError):
            fresh_system.infer({"input": evil})


class TestUpdates:
    def test_partial_update_replaces_variants(self, fresh_system, small_input, small_resnet_reference):
        before = set(fresh_system.live_variants()[1])
        fresh_system.update_partition(1, seed=5)
        after = set(fresh_system.live_variants()[1])
        assert before.isdisjoint(after)
        assert len(after) == 3
        outputs = fresh_system.infer({"input": small_input})
        name = next(iter(small_resnet_reference))
        assert np.allclose(outputs[name], small_resnet_reference[name], atol=1e-2)

    def test_old_enclaves_terminated_on_update(self, fresh_system):
        old_hosts = [c.host for c in fresh_system.monitor.stage_connections(1)]
        fresh_system.update_partition(1, seed=6)
        assert all(h.crashed for h in old_hosts)

    def test_scale_up_adds_variants(self, fresh_system, small_input):
        fresh_system.scale_up(2, 2, seed=7)
        assert len(fresh_system.live_variants()[2]) == 3
        # Partition 2's claim was 1 variant (fast path in hybrid); slow
        # path activates only per config, so inference still succeeds.
        fresh_system.infer({"input": small_input})

    def test_ledger_append_only_through_updates(self, fresh_system):
        count_before = len(fresh_system.monitor.ledger.entries)
        fresh_system.update_partition(1, seed=8)
        assert len(fresh_system.monitor.ledger.entries) > count_before
        fresh_system.monitor.ledger.verify_chain()
