"""Monitor snapshot, rollback protection, and recovery re-binding."""

import numpy as np
import pytest

from repro.crypto.keys import KeyManager
from repro.mvx import MonitorError, MvteeSystem
from repro.mvx.recovery import (
    MonitorStateStore,
    recover_monitor,
    snapshot_monitor,
)
from repro.tee.filesystem import MonotonicCounterService, RollbackError


@pytest.fixture()
def system(small_resnet):
    return MvteeSystem.deploy(
        small_resnet,
        num_partitions=3,
        mvx_partitions={1: 3},
        seed=0,
        verify_partitions=False,
        verify_variants=False,
    )


@pytest.fixture()
def store():
    return MonitorStateStore(
        key_record=KeyManager().create_key("monitor-state"),
        counters=MonotonicCounterService(),
    )


def restart_monitor(system, store):
    """Simulate a monitor TEE restart: fresh enclave, recovered state."""
    fresh_enclave = system.orchestrator.place_monitor()
    system.verifier_for_test = system.monitor.verifier
    hosts = {c.host.variant_id: c.host
             for conns in system.monitor.connections.values() for c in conns}
    return recover_monitor(
        enclave=fresh_enclave,
        verifier=system.monitor.verifier,
        pool=system.pool,
        store=store,
        hosts=hosts,
    )


class TestSnapshot:
    def test_snapshot_roundtrip(self, system, store):
        snapshot_monitor(system.monitor, store)
        blob = store.load()
        assert b'"config"' in blob and b'"ledger"' in blob

    def test_unprovisioned_monitor_rejected(self, system, store):
        system.monitor.config = None
        with pytest.raises(MonitorError, match="unprovisioned"):
            snapshot_monitor(system.monitor, store)

    def test_missing_snapshot_rejected(self, store):
        with pytest.raises(MonitorError, match="no monitor snapshot"):
            store.load()

    def test_rollback_to_older_snapshot_detected(self, system, store):
        snapshot_monitor(system.monitor, store)
        old = dict(store.host_store)
        system.update_partition(1, seed=11)  # state changes (more ledger entries)
        snapshot_monitor(system.monitor, store)
        store.host_store.clear()
        store.host_store.update(old)  # host reverts the state file
        with pytest.raises(RollbackError, match="rollback"):
            store.load()


class TestRecovery:
    def test_recovered_monitor_serves(self, system, store, small_input, small_resnet_reference):
        reference = system.infer({"input": small_input})
        snapshot_monitor(system.monitor, store)
        monitor = restart_monitor(system, store)
        assert monitor.config == system.monitor.config
        from repro.mvx.scheduler import run

        results, stats = run(monitor, [{"input": small_input}])
        name = next(iter(reference))
        assert np.allclose(results[0][name], reference[name], atol=1e-5)
        assert stats.divergences == 0

    def test_rebind_events_logged(self, system, store):
        snapshot_monitor(system.monitor, store)
        monitor = restart_monitor(system, store)
        rebinds = [e for e in monitor.ledger.entries if e.channel_id.endswith("-rebind")]
        assert len(rebinds) == 5
        monitor.ledger.verify_chain()

    def test_dead_variant_retired_on_recovery(self, system, store):
        victim = system.monitor.stage_connections(1)[0]
        snapshot_monitor(system.monitor, store)
        victim.host.terminate()
        monitor = restart_monitor(system, store)
        assert victim.variant_id not in [
            c.variant_id for c in monitor.stage_connections(1)
        ]
        assert len(monitor.stage_connections(1)) == 2

    def test_substituted_variant_rejected(self, system, store):
        from repro.mvx.variant_host import VariantHost

        snapshot_monitor(system.monitor, store)
        # The attacker replaces one variant TEE with a fresh instance of
        # the same artifact (different enclave identity).
        victim = system.monitor.stage_connections(1)[0]
        artifact = next(
            a for a in system.pool.for_partition(1)
            if a.variant_id == victim.variant_id
        )
        impostor = VariantHost.place(
            artifact, system.orchestrator._pick_cpu(), enclave_id="impostor"
        )
        hosts = {c.host.variant_id: c.host
                 for conns in system.monitor.connections.values() for c in conns}
        hosts[victim.variant_id] = impostor
        fresh_enclave = system.orchestrator.place_monitor()
        with pytest.raises(MonitorError, match="enclave identity changed"):
            recover_monitor(
                enclave=fresh_enclave,
                verifier=system.monitor.verifier,
                pool=system.pool,
                store=store,
                hosts=hosts,
            )

    def test_replayed_nonces_survive_recovery(self, system, store):
        used = next(iter(system.monitor._provision_nonces))
        snapshot_monitor(system.monitor, store)
        monitor = restart_monitor(system, store)
        with pytest.raises(MonitorError, match="replayed"):
            monitor.provision_config(system.config, used)
