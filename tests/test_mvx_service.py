"""The streaming inference service."""

import numpy as np
import pytest

from repro.mvx import (
    AdaptiveController,
    InferenceService,
    MonitorError,
    MvteeSystem,
    RequestState,
    ResponseAction,
)
from repro.runtime.faults import FaultInjector


@pytest.fixture()
def system(small_resnet):
    deployed = MvteeSystem.deploy(
        small_resnet,
        num_partitions=3,
        mvx_partitions={1: 3},
        seed=0,
        verify_partitions=False,
        verify_variants=False,
    )
    deployed.monitor.response_action = ResponseAction.DROP_VARIANT
    return deployed


def feeds_for(seed: int):
    return {
        "input": np.random.default_rng(seed).normal(size=(1, 3, 16, 16)).astype(np.float32)
    }


class TestServiceLifecycle:
    def test_submit_drain_result(self, system, small_resnet_reference):
        service = InferenceService(system)
        rid = service.submit(feeds_for(0))
        assert service.status(rid) is RequestState.QUEUED
        assert service.drain() == 1
        assert service.status(rid) is RequestState.DONE
        result = service.result(rid)
        name = next(iter(small_resnet_reference))
        assert np.allclose(result[name], small_resnet_reference[name], atol=1e-2)

    def test_order_preserved(self, system):
        service = InferenceService(system, pipelined=True)
        ids = [service.submit(feeds_for(i)) for i in range(5)]
        service.drain()
        results = [service.result(i) for i in ids]
        # Each request gets its own answer: different seeds, different outputs.
        name = next(iter(results[0]))
        assert not np.allclose(results[0][name], results[1][name])

    def test_max_batch_limits_drain(self, system):
        service = InferenceService(system)
        for i in range(4):
            service.submit(feeds_for(i))
        assert service.drain(max_batch=2) == 2
        assert service.drain() == 2

    def test_max_batch_zero_does_nothing(self, system):
        service = InferenceService(system)
        rid = service.submit(feeds_for(0))
        assert service.drain(max_batch=0) == 0
        assert service.status(rid) is RequestState.QUEUED
        assert service.drain() == 1

    def test_submit_is_thread_safe(self, system):
        import threading

        service = InferenceService(system)
        ids: list[int] = []
        lock = threading.Lock()

        def client(seed):
            for i in range(25):
                rid = service.submit(feeds_for(seed * 100 + i))
                with lock:
                    ids.append(rid)

        threads = [threading.Thread(target=client, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(ids) == 100
        assert len(set(ids)) == 100  # no id handed out twice
        assert all(service.status(rid) is RequestState.QUEUED for rid in ids)

    def test_unknown_request(self, system):
        service = InferenceService(system)
        with pytest.raises(KeyError):
            service.status(99)
        with pytest.raises(KeyError):
            service.result(99)

    def test_empty_drain(self, system):
        assert InferenceService(system).drain() == 0


class TestServiceUnderAttack:
    def test_detection_served_through(self, system, small_resnet_reference):
        service = InferenceService(system)
        victim = system.monitor.stage_connections(1)[0]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        rid = service.submit(feeds_for(1))
        assert service.drain() == 1
        # Detection happened, dissenting variant dropped, request served.
        metrics = service.metrics()
        assert metrics.divergences_detected >= 1
        assert metrics.live_variants[1] == 2
        assert service.status(rid) is RequestState.DONE

    def test_halt_marks_requests_failed(self, small_resnet):
        deployed = MvteeSystem.deploy(
            small_resnet, num_partitions=3, mvx_partitions={1: 3}, seed=0,
            verify_partitions=False, verify_variants=False,
        )  # default HALT response
        service = InferenceService(deployed)
        victim = deployed.monitor.stage_connections(1)[0]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        rid = service.submit(feeds_for(2))
        # drain() reports the requests it *transitioned*: the detection
        # marked this one FAILED, which is a transition, not a no-op.
        assert service.drain() == 1
        assert service.status(rid) is RequestState.FAILED
        with pytest.raises(MonitorError):
            service.result(rid)

    def test_adaptive_controller_integration(self, system):
        controller = AdaptiveController(system, scale_down_threshold=-1.0)
        service = InferenceService(system, controller=controller)
        victim = system.monitor.stage_connections(1)[0]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        service.submit(feeds_for(3))
        service.drain()
        metrics = service.metrics()
        assert metrics.scaling_actions >= 1
        assert metrics.live_variants[1] == 3  # dropped one, scaled one back up


class TestServeMode:
    def test_serve_routes_submissions_through_engine(self, system, small_resnet_reference):
        service = InferenceService(system)
        with service.serve(max_batch_size=4, max_wait_s=0.001) as engine:
            ids = [service.submit(feeds_for(i)) for i in range(5)]
            for rid in ids:
                assert service.wait(rid, timeout=30.0) is RequestState.DONE
        name = next(iter(small_resnet_reference))
        result = service.result(ids[0])
        assert np.allclose(result[name], small_resnet_reference[name], atol=1e-2)
        # The engine recorded into the service registry.
        exposition = service.render_prometheus()
        assert "mvtee_queue_depth" in exposition
        assert "mvtee_batch_size" in exposition
        assert engine.registry is service.registry

    def test_drain_refused_while_serving(self, system):
        service = InferenceService(system)
        with service.serve():
            with pytest.raises(RuntimeError, match="serve"):
                service.drain()
        assert service.drain() == 0  # usable again after exit

    def test_pre_serve_backlog_stays_for_drain(self, system):
        service = InferenceService(system)
        rid = service.submit(feeds_for(0))
        with service.serve():
            pass
        assert service.status(rid) is RequestState.QUEUED
        assert service.drain() == 1


class TestServiceMetrics:
    def test_counters(self, system):
        service = InferenceService(system)
        for i in range(3):
            service.submit(feeds_for(i))
        service.drain()
        metrics = service.metrics()
        assert metrics.requests_served == 3
        assert metrics.requests_failed == 0
        assert metrics.batches_executed == 3
        assert metrics.checkpoints_evaluated == 3  # one MVX partition per batch
        assert metrics.bytes_protected > 0
        assert metrics.live_variants == {0: 1, 1: 3, 2: 1}
