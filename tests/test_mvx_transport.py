"""Distributed deployment: records through the untrusted network fabric.

The RA-TLS channel layer must turn every network-adversary action into a
detected failure: tampering becomes an authentication error, dropping
becomes a missing response -- never silent corruption.
"""

import numpy as np
import pytest

from repro.mvx import FabricTransport, MonitorError, MvteeSystem, ResponseAction
from repro.mvx.transport import MONITOR_ENDPOINT, DirectTransport
from repro.mvx.variant_host import VariantUnavailable
from repro.tee.network import Fabric
from repro.zoo import build_model


def deploy(small_resnet, transport, mvx={1: 3}):
    system = MvteeSystem.deploy(
        small_resnet,
        num_partitions=3,
        mvx_partitions=mvx,
        seed=0,
        verify_partitions=False,
        verify_variants=False,
        transport=transport,
    )
    system.monitor.response_action = ResponseAction.DROP_VARIANT
    return system


class TestFabricTransport:
    def test_inference_over_fabric(self, small_resnet, small_input, small_resnet_reference):
        transport = FabricTransport()
        system = deploy(small_resnet, transport)
        outputs = system.infer({"input": small_input})
        name = next(iter(small_resnet_reference))
        assert np.allclose(outputs[name], small_resnet_reference[name], atol=1e-2)

    def test_bytes_actually_cross_the_fabric(self, small_resnet, small_input):
        transport = FabricTransport()
        system = deploy(small_resnet, transport)
        before = transport.fabric.total_bytes()
        system.infer({"input": small_input})
        moved = transport.fabric.total_bytes() - before
        # Stage inputs/outputs for 5 variant TEEs: well over the raw
        # input size, every byte AEAD-protected.
        assert moved > small_input.nbytes

    def test_matches_direct_transport(self, small_resnet, small_input):
        direct = deploy(small_resnet, None)
        fabric = deploy(small_resnet, FabricTransport())
        out_a = direct.infer({"input": small_input})
        out_b = fabric.infer({"input": small_input})
        for name in out_a:
            assert np.allclose(out_a[name], out_b[name], atol=1e-5)

    def test_unknown_variant_route(self):
        transport = FabricTransport()
        with pytest.raises(VariantUnavailable, match="no transport route"):
            transport.exchange("ghost", b"record")


class TestNetworkAdversary:
    def test_tampering_detected_not_silent(self, small_resnet, small_input):
        """Flipping bits in transit must never alter accepted outputs."""
        state = {"armed": False}

        def adversary(src, dst, record):
            if state["armed"] and src == MONITOR_ENDPOINT:
                mutated = bytearray(record)
                mutated[len(mutated) // 2] ^= 0xFF
                return bytes(mutated)
            return record

        transport = FabricTransport(fabric=Fabric(adversary=adversary))
        system = deploy(small_resnet, transport)
        clean = system.infer({"input": small_input})
        state["armed"] = True
        # With MVX on partition 1 the tampered variants drop out; the
        # fast-path partitions lose their only variant -> the monitor
        # halts rather than accept unauthenticated data.
        with pytest.raises(MonitorError):
            system.infer({"input": small_input})
        # Nothing silently wrong was ever returned.
        assert clean

    def test_dropped_responses_look_like_crashes(self, small_resnet, small_input):
        state = {"drop": False}

        def adversary(src, dst, record):
            if state["drop"] and dst == MONITOR_ENDPOINT:
                return None
            return record

        transport = FabricTransport(fabric=Fabric(adversary=adversary))
        system = deploy(small_resnet, transport)
        system.infer({"input": small_input})
        state["drop"] = True
        with pytest.raises(MonitorError):
            system.infer({"input": small_input})

    def test_selective_tamper_outvoted(self, small_resnet, small_input, small_resnet_reference):
        """Tampering with ONE variant's traffic: survivors keep serving."""
        target_holder = {}

        def adversary(src, dst, record):
            if dst == target_holder.get("endpoint"):
                mutated = bytearray(record)
                mutated[0] ^= 1
                return bytes(mutated)
            return record

        transport = FabricTransport(fabric=Fabric(adversary=adversary))
        system = deploy(small_resnet, transport)
        victim = system.monitor.stage_connections(1)[0].variant_id
        target_holder["endpoint"] = f"mvtee-variant-{victim}"
        outputs = system.infer({"input": small_input})
        name = next(iter(small_resnet_reference))
        assert np.allclose(outputs[name], small_resnet_reference[name], atol=1e-2)
        assert victim not in [c.variant_id for c in system.monitor.stage_connections(1)]


class TestDirectTransport:
    def test_explicit_direct_transport(self, small_resnet, small_input):
        system = deploy(small_resnet, DirectTransport())
        assert system.infer({"input": small_input})

    def test_unknown_route(self):
        with pytest.raises(VariantUnavailable):
            DirectTransport().exchange("ghost", b"x")
