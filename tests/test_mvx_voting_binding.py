"""Voting strategies and the binding ledger."""

import numpy as np
import pytest

from repro.mvx.binding import BindingLedger, LedgerError
from repro.mvx.voting import VariantOutput, vote


def out(variant_id: str, value: float, *, crashed: bool = False) -> VariantOutput:
    if crashed:
        return VariantOutput(variant_id=variant_id, outputs=None, error="crash")
    return VariantOutput(
        variant_id=variant_id, outputs={"t": np.full(4, value, dtype=np.float32)}
    )


class TestUnanimous:
    def test_all_agree(self):
        result = vote([out("a", 1.0), out("b", 1.0), out("c", 1.0)])
        assert result.passed and result.unanimous
        assert result.agreeing == ("a", "b", "c")

    def test_one_dissenter_fails(self):
        result = vote([out("a", 1.0), out("b", 1.0), out("c", 9.0)])
        assert not result.passed
        assert result.dissenting == ("c",)
        assert result.agreeing == ("a", "b")

    def test_crash_breaks_unanimity(self):
        result = vote([out("a", 1.0), out("b", 1.0, crashed=True)])
        assert not result.passed
        assert result.crashed == ("b",)

    def test_single_variant_trivially_unanimous(self):
        assert vote([out("a", 2.0)]).passed

    def test_all_crashed(self):
        result = vote([out("a", 0, crashed=True), out("b", 0, crashed=True)])
        assert not result.passed
        assert result.crashed == ("a", "b")


class TestMajority:
    def test_majority_wins_over_dissenter(self):
        result = vote(
            [out("a", 1.0), out("b", 1.0), out("c", 9.0)], strategy="majority"
        )
        assert result.passed
        assert np.allclose(result.accepted["t"], 1.0)

    def test_majority_counts_crashed_in_denominator(self):
        # 2 agree out of 4 total -> not a strict majority.
        result = vote(
            [out("a", 1.0), out("b", 1.0), out("c", 9.0, crashed=True), out("d", 5.0)],
            strategy="majority",
        )
        assert not result.passed

    def test_split_vote_fails(self):
        result = vote([out("a", 1.0), out("b", 9.0)], strategy="majority")
        assert not result.passed


class TestPlurality:
    def test_largest_cluster_wins(self):
        result = vote(
            [out("a", 1.0), out("b", 1.0), out("c", 9.0), out("d", 5.0)],
            strategy="plurality",
        )
        assert result.passed
        assert result.agreeing == ("a", "b")

    def test_tie_fails(self):
        result = vote(
            [out("a", 1.0), out("b", 1.0), out("c", 9.0), out("d", 9.0)],
            strategy="plurality",
        )
        assert not result.passed


class TestVoteMisc:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown voting strategy"):
            vote([out("a", 1.0)], strategy="coin-flip")

    def test_benign_float_noise_clusters_together(self):
        a = VariantOutput("a", {"t": np.ones(4, dtype=np.float32)})
        b = VariantOutput("b", {"t": np.ones(4, dtype=np.float32) + 1e-6})
        assert vote([a, b]).unanimous

    def test_reports_attached_on_divergence(self):
        result = vote([out("a", 1.0), out("b", 9.0)])
        assert result.reports
        assert not result.reports[0].consistent


class TestBindingLedger:
    def test_append_and_verify(self):
        ledger = BindingLedger()
        for i in range(3):
            ledger.append(
                variant_id=f"v{i}", partition_index=0, enclave_id=f"e{i}",
                measurement="m" * 64, channel_id=f"c{i}",
            )
        ledger.verify_chain()
        assert len(ledger.entries) == 3

    def test_chain_tamper_detected(self):
        ledger = BindingLedger()
        ledger.append(variant_id="v0", partition_index=0, enclave_id="e0",
                      measurement="m", channel_id="c0")
        ledger.append(variant_id="v1", partition_index=0, enclave_id="e1",
                      measurement="m", channel_id="c1")
        # Mutate history.
        from dataclasses import replace

        ledger.entries[0] = replace(ledger.entries[0], variant_id="evil")
        with pytest.raises(LedgerError, match="chain broken"):
            ledger.verify_chain()

    def test_retire_removes_active(self):
        ledger = BindingLedger()
        ledger.append(variant_id="v0", partition_index=0, enclave_id="e0",
                      measurement="m", channel_id="c0")
        ledger.append(variant_id="v0", partition_index=0, enclave_id="e0",
                      measurement="m", channel_id="c0", event="retire")
        assert "v0" not in ledger.active_bindings()

    def test_update_replaces_active(self):
        ledger = BindingLedger()
        ledger.append(variant_id="v0", partition_index=0, enclave_id="e0",
                      measurement="m", channel_id="c0")
        ledger.append(variant_id="v0", partition_index=0, enclave_id="e1",
                      measurement="m2", channel_id="c1", event="update")
        assert ledger.active_bindings()["v0"].enclave_id == "e1"
