"""Observability subsystem: spans, metrics registry, unified inference API."""

import json
import time

import numpy as np
import pytest

from repro.mvx import (
    ExecutionMode,
    InferenceOptions,
    InferenceService,
    SchedulingMode,
    run,
    validate_feeds,
)
from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    InMemorySpanExporter,
    JsonlSpanExporter,
    MetricsRegistry,
    NullTracer,
    Sinks,
    Tracer,
    format_span_tree,
)


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


class TestSpanNesting:
    def test_context_manager_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert tracer.roots == [outer]
        assert outer.children == [inner]

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        anchor = tracer.start_span("anchor")
        with tracer.span("root"):
            with tracer.span("child", parent=anchor) as child:
                # The explicit-parent span still anchors implicit children.
                with tracer.span("grandchild") as grandchild:
                    pass
        tracer.end_span(anchor)
        assert anchor.children == [child]
        assert child.children == [grandchild]

    def test_timing_and_idempotent_end(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            time.sleep(0.002)
        first_end = span.end_time
        assert span.ended and span.duration >= 0.002
        span.end()
        assert span.end_time == first_end

    def test_error_recording(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kaput")
        (span,) = tracer.roots
        assert span.status == "error"
        assert span.attributes["error"] == "kaput"

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert len(tracer.find("b")) == 2
        assert [s.name for s in tracer.roots[0].walk()] == ["a", "b", "b"]

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("invisible") as span:
            pass
        assert span.ended
        assert tracer.roots == []


class TestExporters:
    def test_in_memory_ring_buffer_evicts_oldest(self):
        exporter = InMemorySpanExporter(capacity=2)
        tracer = Tracer(exporters=[exporter])
        for i in range(3):
            with tracer.span(f"root-{i}"):
                pass
        assert [s.name for s in exporter.spans] == ["root-1", "root-2"]

    def test_only_roots_are_exported(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporters=[exporter])
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in exporter.spans] == ["root"]

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(exporters=[JsonlSpanExporter(path)])
        with tracer.span("root", partition=3):
            with tracer.span("child"):
                pass
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        doc = json.loads(lines[0])
        assert doc["name"] == "root"
        assert doc["attributes"] == {"partition": 3}
        assert [c["name"] for c in doc["children"]] == ["child"]

    def test_format_tree(self):
        tracer = Tracer()
        with tracer.span("infer", num_batches=2):
            with tracer.span("batch", batch=0):
                pass
        rendered = tracer.format_tree()
        assert "infer" in rendered and "num_batches=2" in rendered
        assert "\n  batch" in rendered
        assert format_span_tree(tracer.roots[0]).startswith("infer")


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestCounterSemantics:
    def test_inc_and_labels(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(2, partition=1)
        assert counter.value() == 1
        assert counter.value(partition=1) == 2
        assert counter.total() == 3

    def test_decrease_rejected(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("hits").inc(-1)


class TestGaugeSemantics:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(5, queue="a")
        gauge.inc(2, queue="a")
        gauge.dec(3, queue="a")
        assert gauge.value(queue="a") == 4
        assert gauge.value(queue="b") == 0


class TestHistogramSemantics:
    def test_observe_sum_count(self):
        hist = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            hist.observe(v)
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(55.55)

    def test_buckets_are_cumulative(self):
        hist = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            hist.observe(v)
        samples = {
            (name, labels): value for name, labels, value in hist.samples()
        }
        assert samples[("lat_bucket", '{le="0.1"}')] == 1
        assert samples[("lat_bucket", '{le="1"}')] == 2
        assert samples[("lat_bucket", '{le="10"}')] == 3
        assert samples[("lat_bucket", '{le="+Inf"}')] == 4
        assert samples[("lat_count", "")] == 4


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("a")

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests").inc(3, route="infer")
        registry.gauge("depth").set(2)
        registry.histogram("lat_seconds", buckets=(0.5, 1.0)).observe(0.25)
        text = registry.render_prometheus()
        assert "# HELP req_total Requests\n# TYPE req_total counter\n" in text
        assert 'req_total{route="infer"} 3\n' in text
        assert "# TYPE depth gauge\ndepth 2\n" in text
        assert "# TYPE lat_seconds histogram\n" in text
        assert 'lat_seconds_bucket{le="0.5"} 1\n' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1\n' in text
        assert "lat_seconds_sum 0.25\n" in text
        assert "lat_seconds_count 1\n" in text

    def test_json_exposition(self):
        registry = MetricsRegistry()
        registry.counter("req_total").inc(2)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        doc = registry.render_json()
        assert doc["req_total"]["kind"] == "counter"
        assert doc["req_total"]["values"][""] == 2
        assert doc["lat"]["values"][""]["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.names() == []


# ----------------------------------------------------------------------
# validate_feeds error paths (trust-boundary hardening, §6.5)
# ----------------------------------------------------------------------


class TestValidateFeeds:
    def test_valid_feeds_accepted(self, deployed_system, small_input):
        validate_feeds(deployed_system.monitor, {"input": small_input})

    def test_missing_input_rejected(self, deployed_system):
        with pytest.raises(ValueError, match="missing input tensors"):
            validate_feeds(deployed_system.monitor, {})

    def test_unexpected_input_rejected(self, deployed_system, small_input):
        with pytest.raises(ValueError, match="unexpected input tensors"):
            validate_feeds(
                deployed_system.monitor,
                {"input": small_input, "backdoor": small_input},
            )

    def test_wrong_shape_rejected(self, deployed_system, small_input):
        with pytest.raises(ValueError, match="has shape"):
            validate_feeds(
                deployed_system.monitor, {"input": small_input[:, :, :8, :8]}
            )

    def test_wrong_dtype_rejected(self, deployed_system, small_input):
        with pytest.raises(ValueError, match="has dtype"):
            validate_feeds(
                deployed_system.monitor, {"input": small_input.astype(np.float64)}
            )

    def test_non_ndarray_rejected(self, deployed_system, small_input):
        with pytest.raises(ValueError, match="not an ndarray"):
            validate_feeds(
                deployed_system.monitor, {"input": small_input.tolist()}
            )


# ----------------------------------------------------------------------
# Unified inference API + end-to-end span/metric acceptance
# ----------------------------------------------------------------------


def _batches(n, rng):
    return [
        {"input": rng.normal(size=(1, 3, 16, 16)).astype(np.float32)}
        for _ in range(n)
    ]


class TestUnifiedInferenceApi:
    def test_async_run_produces_full_span_tree(self, deployed_system):
        rng = np.random.default_rng(7)
        tracer = Tracer()
        registry = MetricsRegistry()
        options = InferenceOptions(
            scheduling=SchedulingMode.PIPELINED,
            mode=ExecutionMode.ASYNC,
            sinks=Sinks(tracer=tracer, metrics=registry),
        )
        results = deployed_system.infer_batches(_batches(3, rng), options)
        stats = deployed_system.last_stats
        assert len(results) == 3
        (root,) = tracer.roots
        assert root.name == "infer"
        assert root.attributes["execution_mode"] == "async"
        assert root.attributes["scheduling"] == "pipelined"
        # Every batch, stage execution and checkpoint appears in the tree.
        assert len(root.find("batch")) == 3
        assert len(root.find("stage")) == stats.stage_executions
        assert len(root.find("checkpoint")) >= stats.checkpoints_evaluated > 0
        # Variant round trips nest under stages and carry attributes.
        variants = root.find("variant")
        assert variants and all(
            "variant" in s.attributes and "bytes_protected" in s.attributes
            for s in variants
        )
        # The run ran async but the provisioned config is untouched.
        assert deployed_system.config.execution_mode == "sync"

    def test_stage_histogram_matches_legacy_stage_seconds(self, deployed_system):
        rng = np.random.default_rng(8)
        registry = MetricsRegistry()
        deployed_system.infer_batches(
            _batches(2, rng), InferenceOptions(sinks=Sinks(metrics=registry))
        )
        stats = deployed_system.last_stats
        hist = registry.histogram("mvtee_stage_seconds")
        legacy = stats.extra["stage_seconds"]
        assert set(legacy) == set(range(len(deployed_system.partition_set)))
        for index, total in legacy.items():
            assert hist.sum(partition=index) == pytest.approx(total)
            assert hist.count(partition=index) == 2  # one per batch
        text = registry.render_prometheus()
        assert 'mvtee_stage_seconds_bucket{le="+Inf",partition="0"} 2' in text

    def test_detection_counters_flow_to_registry(self, small_resnet):
        from repro.mvx import MvteeSystem, ResponseAction
        from repro.runtime.faults import FaultInjector

        system = MvteeSystem.deploy(
            small_resnet,
            num_partitions=3,
            mvx_partitions={1: 3},
            seed=0,
            verify_partitions=False,
            verify_variants=False,
        )
        system.monitor.response_action = ResponseAction.DROP_VARIANT
        registry = MetricsRegistry()
        victim = system.monitor.stage_connections(1)[0]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        rng = np.random.default_rng(9)
        system.infer_batches(
            _batches(2, rng), InferenceOptions(sinks=Sinks(metrics=registry))
        )
        assert registry.counter("mvtee_divergences_total").value(partition=1) >= 1
        assert (
            registry.counter("mvtee_recovery_actions_total").value(
                action="drop-variant"
            )
            >= 1
        )
        assert registry.counter("mvtee_checkpoints_total").total() >= 1

    def test_legacy_entry_points_are_gone(self):
        # PR 1's run_sequential/run_pipelined wrappers and the
        # infer_batches(pipelined=) flag completed their deprecation
        # cycle; the unified run(options) surface is the only spelling.
        import repro.mvx.scheduler as scheduler

        assert not hasattr(scheduler, "run_sequential")
        assert not hasattr(scheduler, "run_pipelined")

    def test_infer_batches_rejects_pipelined_kwarg(self, deployed_system):
        rng = np.random.default_rng(11)
        with pytest.raises(TypeError):
            deployed_system.infer_batches(_batches(1, rng), pipelined=True)


class TestServiceReadThrough:
    def test_service_metrics_read_through_registry(self, small_resnet):
        from repro.mvx import MvteeSystem

        system = MvteeSystem.deploy(
            small_resnet,
            num_partitions=3,
            mvx_partitions={1: 3},
            seed=0,
            verify_partitions=False,
            verify_variants=False,
        )
        registry = MetricsRegistry()
        tracer = Tracer()
        service = InferenceService(system, registry=registry, tracer=tracer)
        rng = np.random.default_rng(12)
        for feeds in _batches(3, rng):
            service.submit(feeds)
        service.drain()
        metrics = service.metrics()
        assert metrics.requests_served == 3
        assert metrics.batches_executed == 3
        assert registry.counter("mvtee_requests_served_total").total() == 3
        # The service's registry also carries the hot-path instruments...
        assert registry.histogram("mvtee_stage_seconds").count(partition=0) == 3
        # ... and the full exposition includes both.
        text = service.render_prometheus()
        assert "mvtee_requests_served_total 3" in text
        assert "mvtee_stage_seconds_bucket" in text
        # to_prometheus output format is unchanged (byte-stable surface).
        legacy = metrics.to_prometheus()
        assert legacy.startswith(
            "# TYPE mvtee_requests_served_total counter\n"
            "mvtee_requests_served_total 3\n"
        )
        assert 'mvtee_live_variants{partition="1"} 3\n' in legacy
        # Tracing flowed through the serving path too.
        assert tracer.find("stage")


# ----------------------------------------------------------------------
# Exposition escaping (Prometheus text format)
# ----------------------------------------------------------------------


class TestLabelEscaping:
    def test_special_characters_escaped(self):
        registry = MetricsRegistry()
        registry.counter("mvtee_test_total", "h").inc(
            reason='shed: queue "full"', path="C:\\temp", detail="line1\nline2"
        )
        text = registry.render_prometheus()
        assert 'reason="shed: queue \\"full\\""' in text
        assert 'path="C:\\\\temp"' in text
        assert 'detail="line1\\nline2"' in text
        # The raw newline must not split the sample line.
        sample_lines = [l for l in text.splitlines() if l.startswith("mvtee_test_total{")]
        assert len(sample_lines) == 1

    def test_plain_values_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("mvtee_test_total", "h").inc(partition="1", mode="sync")
        assert 'mode="sync",partition="1"' in registry.render_prometheus()


# ----------------------------------------------------------------------
# Histogram quantile estimation
# ----------------------------------------------------------------------


class TestHistogramQuantile:
    def _histogram(self, observations, buckets=(1.0, 2.0, 3.0, 4.0)):
        histogram = Histogram("h", buckets=buckets)
        for value in observations:
            histogram.observe(value)
        return histogram

    def test_known_distribution(self):
        # One observation per bucket: quantiles interpolate the edges.
        histogram = self._histogram([0.5, 1.5, 2.5, 3.5])
        assert histogram.quantile(0.25) == pytest.approx(1.0)
        assert histogram.quantile(0.5) == pytest.approx(2.0)
        assert histogram.quantile(1.0) == pytest.approx(4.0)

    def test_interpolation_within_bucket(self):
        # 10 observations, all in the (1, 2] bucket: the median sits at
        # the bucket midpoint under linear interpolation.
        histogram = self._histogram([1.5] * 10)
        assert histogram.quantile(0.5) == pytest.approx(1.5)
        assert histogram.quantile(0.1) == pytest.approx(1.1)

    def test_skewed_distribution(self):
        # 90 fast + 10 slow: p95 lands in the slow bucket.
        histogram = self._histogram([0.5] * 90 + [3.5] * 10)
        p95 = histogram.quantile(0.95)
        assert 3.0 < p95 <= 4.0
        assert histogram.quantile(0.5) == pytest.approx(5 / 9, rel=1e-6)

    def test_inf_bucket_clamps_to_largest_finite_bound(self):
        histogram = self._histogram([100.0], buckets=(1.0, 2.0))
        assert histogram.quantile(0.99) == 2.0

    def test_empty_series_is_nan(self):
        import math

        histogram = Histogram("h")
        assert math.isnan(histogram.quantile(0.5))
        histogram.observe(1.0, partition="0")
        assert math.isnan(histogram.quantile(0.5, partition="1"))
        assert not math.isnan(histogram.quantile(0.5, partition="0"))

    def test_invalid_quantile_rejected(self):
        from repro.observability import quantile_from_buckets

        with pytest.raises(ValueError):
            quantile_from_buckets((1.0,), [1], 1, 1.5)

    def test_aggregate_sums_label_sets(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(0.5, partition="0")
        histogram.observe(0.5, partition="1")
        histogram.observe(1.5, partition="1")
        bounds, counts, total = histogram.aggregate()
        assert bounds == (1.0, 2.0)
        assert counts == [2, 3]
        assert total == 3


# ----------------------------------------------------------------------
# Tracer error paths
# ----------------------------------------------------------------------


class TestTracerErrorPaths:
    def test_exception_records_error_ends_span_pops_stack(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("inner") as inner:
                    raise RuntimeError("boom")
        assert inner.status == "error"
        assert inner.attributes["error"] == "boom"
        assert inner.ended
        assert tracer.current() is None  # stack fully unwound
        (root,) = tracer.roots
        assert root.status == "error"
        assert root.ended

    def test_failed_root_is_still_exported(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer([exporter])
        with pytest.raises(ValueError):
            with tracer.span("root"):
                raise ValueError("bad")
        assert [s.name for s in exporter.spans] == ["root"]

    def test_jsonl_exporter_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer([JsonlSpanExporter(path)])
        with pytest.raises(RuntimeError):
            with tracer.span("root", partition=1):
                with tracer.span("child"):
                    raise RuntimeError("kaboom")
        with tracer.span("second"):
            pass
        docs = [json.loads(line) for line in path.read_text().splitlines()]
        assert [d["name"] for d in docs] == ["root", "second"]
        assert docs[0]["status"] == "error"
        assert docs[0]["attributes"] == {"partition": 1, "error": "kaboom"}
        assert docs[0]["children"][0]["name"] == "child"
        assert docs[0]["span_id"] == tracer.roots[0].span_id

    def test_null_tracer_is_a_true_no_op(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = NullTracer([JsonlSpanExporter(path)])
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                raise RuntimeError("x")
        with tracer.span("again") as span:
            span.set_attribute("k", "v")
        assert tracer.roots == []
        assert tracer.current() is None
        assert tracer.trace_id() is None
        assert tracer.current_span_id() is None
        assert not path.exists()  # nothing exported

    def test_trace_and_span_ids_inside_blocks(self):
        tracer = Tracer()
        assert tracer.trace_id() is None
        with tracer.span("root") as root:
            assert tracer.trace_id() == root.span_id
            with tracer.span("child") as child:
                assert tracer.trace_id() == root.span_id
                assert tracer.current_span_id() == child.span_id
        assert tracer.trace_id() is None


class TestConcurrentInstruments:
    """Read-side thread safety: render while writers mutate.

    Regression for torn reads / ``dictionary changed size during
    iteration`` once several engine workers write one registry while an
    operator scrape renders it.
    """

    def test_histogram_hammered_by_writers_and_renderers(self):
        import threading

        registry = MetricsRegistry()
        hist = registry.histogram("mvtee_test_hammer_seconds", "hammer")
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer(worker: int) -> None:
            n = 0
            try:
                while not stop.is_set():
                    # Rotating label sets force new series to appear
                    # mid-render, the exact torn-iteration hazard.
                    hist.observe(0.0001 * (n % 64), worker=worker, shard=n % 13)
                    n += 1
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def renderer() -> None:
            try:
                while not stop.is_set():
                    hist.to_json()
                    list(hist.samples())
                    hist.quantile(0.95)
                    hist.sum()
                    hist.count()
                    hist.label_sets()
                    registry.render_prometheus()
                    registry.render_json()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(2)]
        threads += [threading.Thread(target=renderer) for _ in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors, errors
        assert hist.count(worker=0, shard=0) > 0

    def test_counter_and_gauge_reads_are_locked_snapshots(self):
        import threading

        counter = Counter("mvtee_test_total")
        gauge = Gauge("mvtee_test_gauge")
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer() -> None:
            n = 0
            try:
                while not stop.is_set():
                    counter.inc(label=n % 31)
                    gauge.set(n, label=n % 31)
                    n += 1
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader() -> None:
            try:
                while not stop.is_set():
                    counter.total()
                    counter.value(label=3)
                    list(counter.samples())
                    counter.to_json()
                    gauge.value(label=3)
                    list(gauge.samples())
                    gauge.to_json()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(0.2)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors, errors
        assert counter.total() > 0


class TestThreadLocalTracer:
    def test_span_stacks_are_per_thread(self):
        import threading

        tracer = Tracer()
        inner_parents: dict[str, str | None] = {}
        barrier = threading.Barrier(2)

        def worker(name: str) -> None:
            with tracer.span(name) as root:
                barrier.wait(timeout=10.0)
                # Each thread's implicit parent must be its own root,
                # not whichever span the other thread has open.
                with tracer.span(f"{name}-child"):
                    pass
                inner_parents[name] = (
                    root.children[0].name if root.children else None
                )

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert inner_parents == {"a": "a-child", "b": "b-child"}
        assert len(tracer.roots) == 2
