"""Bundle persistence: build on machine A, deploy from disk on machine B."""

import json

import numpy as np
import pytest

from repro.mvx import ResponseAction
from repro.mvx.bootstrap import bootstrap_deployment
from repro.mvx.config import MvxConfig
from repro.mvx.scheduler import run
from repro.offline import OfflineTool, ToolConfig
from repro.offline.bundle import load_bundle, save_bundle
from repro.runtime.faults import FaultInjector


@pytest.fixture(scope="module")
def bundle_dir(small_resnet, tmp_path_factory):
    tool = OfflineTool(
        ToolConfig(num_partitions=3, variants_per_partition=3,
                   verify_partitions=False, verify_variants=False, seed=0)
    )
    output = tool.run(small_resnet)
    return save_bundle(output, tmp_path_factory.mktemp("bundle")), output


class TestBundleRoundtrip:
    def test_structure_on_disk(self, bundle_dir):
        root, output = bundle_dir
        assert (root / "model.bin").exists()
        assert (root / "keys.json").exists()
        variant_dirs = list((root / "variants").iterdir())
        assert len(variant_dirs) == output.pool.total_variants()
        for variant_dir in variant_dirs:
            assert (variant_dir / "spec.json").exists()
            assert (variant_dir / "model.bin").exists()

    def test_loaded_bundle_matches(self, bundle_dir):
        root, output = bundle_dir
        loaded = load_bundle(root)
        assert loaded.partition_set.model.structural_hash() == (
            output.partition_set.model.structural_hash()
        )
        assert len(loaded.partition_set) == len(output.partition_set)
        assert loaded.pool.total_variants() == output.pool.total_variants()
        original = output.pool.for_partition(0)[0]
        restored = next(
            a for a in loaded.pool.for_partition(0)
            if a.variant_id == original.variant_id
        )
        assert restored.key_record.key == original.key_record.key
        assert restored.model.structural_hash() == original.model.structural_hash()

    def test_keys_file_is_owner_secret(self, bundle_dir):
        root, output = bundle_dir
        keys = json.loads((root / "keys.json").read_text())
        artifact = output.pool.for_partition(0)[0]
        assert keys[artifact.variant_id]["key"] == artifact.key_record.key.hex()

    def test_deploy_from_loaded_bundle(self, bundle_dir, small_input, small_resnet_reference):
        root, _ = bundle_dir
        loaded = load_bundle(root)
        config = MvxConfig.selective(3, {1: 3})
        _, monitor, _, _ = bootstrap_deployment(loaded.pool, config)
        monitor.response_action = ResponseAction.DROP_VARIANT
        results, stats = run(monitor, [{"input": small_input}])
        name = next(iter(small_resnet_reference))
        assert np.allclose(results[0][name], small_resnet_reference[name], atol=1e-2)
        assert stats.divergences == 0


class TestRestartBatchResponse:
    def test_restart_recovers_after_dropping_dissenter(
        self, small_resnet, small_input, small_resnet_reference
    ):
        from repro.mvx import MvteeSystem

        system = MvteeSystem.deploy(
            small_resnet, num_partitions=3, mvx_partitions={1: 3}, seed=0,
            verify_partitions=False, verify_variants=False,
        )
        system.monitor.response_action = ResponseAction.RESTART_BATCH
        victim = system.monitor.stage_connections(1)[0]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        outputs = system.infer({"input": small_input})
        name = next(iter(small_resnet_reference))
        assert np.allclose(outputs[name], small_resnet_reference[name], atol=1e-2)
        # The dissenting variant was dropped and the stage re-executed on
        # the two survivors (each serving the batch twice).
        survivors = system.monitor.stage_connections(1)
        assert len(survivors) == 2
        assert all(c.host.inferences_served == 2 for c in survivors)
