"""The offline tool CLI."""

import json

import pytest

from repro.offline.cli import main


class TestCliModels:
    def test_lists_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet-50" in out and "tiny-gpt" in out


class TestCliInspect:
    def test_human_readable(self, capsys):
        assert main(["inspect", "tiny-cnn"]) == 0
        out = capsys.readouterr().out
        assert "nodes:" in out and "Conv" in out

    def test_json_output(self, capsys):
        assert main(["inspect", "tiny-cnn", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "tiny-cnn"

    def test_input_size_forwarded(self, capsys):
        assert main(["inspect", "small-resnet", "--input-size", "16"]) == 0
        assert "16" in capsys.readouterr().out

    def test_unknown_model_errors(self):
        with pytest.raises(ValueError, match="unknown model"):
            main(["inspect", "alexnet-9000"])


class TestCliPartition:
    def test_auto_mode(self, capsys):
        assert main(
            ["partition", "small-resnet", "--input-size", "16",
             "--partitions", "3", "--no-verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 (balance score" in out
        assert "p0:" in out and "p2:" in out

    def test_verified_run(self, capsys):
        assert main(
            ["partition", "tiny-cnn", "--partitions", "2"]
        ) == 0
        assert "correctness: staged execution verified" in capsys.readouterr().out

    def test_manual_cuts(self, capsys):
        assert main(
            ["partition", "tiny-cnn", "--cuts", "2", "4", "--no-verify"]
        ) == 0
        assert "3 (balance score" in capsys.readouterr().out


class TestCliBuild:
    def test_build_bundle(self, tmp_path, capsys):
        assert main(
            ["build", "tiny-cnn", "--partitions", "2", "--variants", "2",
             "--out", str(tmp_path / "bundle"), "--no-verify"]
        ) == 0
        bundle = tmp_path / "bundle"
        assert (bundle / "report.json").exists()
        assert (bundle / "partitions.json").exists()
        assert (bundle / "images.json").exists()
        assert (bundle / "monitor" / "manifest.json").exists()
        index = json.loads((bundle / "images.json").read_text())
        assert len(index) == 4
        partitions = json.loads((bundle / "partitions.json").read_text())
        assert set(partitions) == {"p0", "p1"}
        # Variant dirs hold the sealed private files.
        variant_dir = bundle / "variants" / index[0]["variant_id"]
        sealed = [p for p in variant_dir.iterdir() if p.name.endswith(".enc")]
        assert sealed
        for path in sealed:
            assert b'"magic": "mvtee-sealed-v1"' in path.read_bytes()

    def test_requires_out(self):
        with pytest.raises(SystemExit):
            main(["build", "tiny-cnn"])
