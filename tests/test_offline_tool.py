"""Offline tool: inspection, configured runs, container images."""

import json

import pytest

from repro.offline import (
    OfflineTool,
    ToolConfig,
    build_monitor_image,
    build_variant_image,
    inspect_model,
)


class TestInspection:
    def test_report_fields(self, small_resnet):
        report = inspect_model(small_resnet)
        assert report.num_nodes == len(small_resnet.nodes)
        assert report.total_flops > 0
        assert report.parameter_bytes > 0
        assert report.op_histogram["Conv"] > 0

    def test_node_indices_follow_topo_order(self, small_resnet):
        report = inspect_model(small_resnet)
        assert [n.index for n in report.nodes] == list(range(report.num_nodes))

    def test_json_serializable(self, small_resnet):
        blob = json.dumps(inspect_model(small_resnet).to_json())
        restored = json.loads(blob)
        assert restored["name"] == small_resnet.name


class TestToolConfig:
    def test_from_json_defaults(self):
        config = ToolConfig.from_json({})
        assert config.num_partitions == 5
        assert config.partition_mode == "auto"

    def test_from_json_manual(self):
        config = ToolConfig.from_json(
            {"partition_mode": "manual", "manual_cut_indices": [3, 7]}
        )
        assert config.manual_cut_indices == (3, 7)


class TestToolRuns:
    def test_auto_mode(self, small_resnet):
        tool = OfflineTool(ToolConfig(num_partitions=3, variants_per_partition=2,
                                      verify_variants=False))
        output = tool.run(small_resnet)
        assert len(output.partition_set) == 3
        assert output.pool.total_variants() == 6
        assert len(output.variant_images) == 6

    def test_manual_mode(self, tiny_cnn):
        tool = OfflineTool(ToolConfig(partition_mode="manual",
                                      manual_cut_indices=(2, 4),
                                      variants_per_partition=1,
                                      verify_variants=False))
        output = tool.run(tiny_cnn)
        assert len(output.partition_set) == 3

    def test_manual_without_cuts_rejected(self, tiny_cnn):
        tool = OfflineTool(ToolConfig(partition_mode="manual"))
        with pytest.raises(ValueError, match="manual mode requires"):
            tool.run(tiny_cnn)

    def test_unknown_mode_rejected(self, tiny_cnn):
        tool = OfflineTool(ToolConfig(partition_mode="genetic"))
        with pytest.raises(ValueError, match="unknown partition mode"):
            tool.run(tiny_cnn)

    def test_from_json_file_content(self, tiny_cnn):
        content = json.dumps(
            {"num_partitions": 2, "variants_per_partition": 1, "verify_variants": False}
        )
        output = OfflineTool.from_json_file_content(content).run(tiny_cnn)
        assert len(output.partition_set) == 2

    def test_explicit_specs(self, tiny_cnn):
        from repro.variants.spec import VariantSpec

        specs = [
            VariantSpec(variant_id=f"p{i}-custom", partition_index=i).to_json()
            for i in range(2)
        ]
        tool = OfflineTool(ToolConfig(num_partitions=2, explicit_specs=tuple(specs),
                                      verify_variants=False))
        output = tool.run(tiny_cnn)
        assert output.pool.total_variants() == 2


class TestImages:
    def test_monitor_image_digest_stable(self):
        assert build_monitor_image().digest() == build_monitor_image().digest()

    def test_variant_image_contains_sealed_files(self, small_resnet):
        tool = OfflineTool(ToolConfig(num_partitions=2, variants_per_partition=1,
                                      verify_variants=False, verify_partitions=False))
        output = tool.run(small_resnet)
        artifact = output.pool.for_partition(0)[0]
        image = build_variant_image(artifact)
        assert artifact.paths["model"] in image.files
        assert image.total_bytes() > 0

    def test_different_variants_different_digests(self, small_resnet):
        tool = OfflineTool(ToolConfig(num_partitions=2, variants_per_partition=2,
                                      verify_variants=False, verify_partitions=False))
        output = tool.run(small_resnet)
        digests = {img.digest() for img in output.variant_images.values()}
        assert len(digests) == len(output.variant_images)
