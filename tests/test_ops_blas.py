"""BLAS backends: agreement, diversity and fault hooks."""

import numpy as np
import pytest

from repro.ops.blas import available_backends, get_backend
from repro.runtime.faults import backend_bitflip_fault


class TestBackends:
    def test_three_backends_registered(self):
        assert available_backends() == ["eigen-sim", "mkl-sim", "openblas-sim"]

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown BLAS backend"):
            get_backend("cublas")

    @pytest.mark.parametrize("name", ["mkl-sim", "openblas-sim", "eigen-sim"])
    def test_gemm_correct(self, name):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(17, 33)).astype(np.float32)
        b = rng.normal(size=(33, 9)).astype(np.float32)
        out = get_backend(name).gemm(a, b)
        assert np.allclose(out, a @ b, atol=1e-4)

    def test_backends_numerically_close_not_required_identical(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(64, 200)).astype(np.float32)
        b = rng.normal(size=(200, 64)).astype(np.float32)
        results = [get_backend(n).gemm(a, b) for n in available_backends()]
        for r in results[1:]:
            assert np.allclose(results[0], r, atol=1e-3)

    def test_fresh_instances_isolated(self):
        one = get_backend("mkl-sim")
        two = get_backend("mkl-sim")
        one.fault_hook = backend_bitflip_fault()
        a = np.ones((2, 2), dtype=np.float32)
        assert not np.array_equal(one.gemm(a, a), two.gemm(a, a))

    def test_fault_hook_applies_and_clears(self):
        backend = get_backend("openblas-sim")
        a = np.ones((4, 4), dtype=np.float32)
        clean = backend.gemm(a, a)
        backend.fault_hook = backend_bitflip_fault(flat_index=0, bit=30)
        dirty = backend.gemm(a, a)
        assert not np.array_equal(clean, dirty)
        backend.clear_fault()
        assert np.array_equal(backend.gemm(a, a), clean)

    def test_bitflip_corrupts_exactly_one_element(self):
        backend = get_backend("mkl-sim")
        backend.fault_hook = backend_bitflip_fault(flat_index=5, bit=30)
        a = np.eye(4, dtype=np.float32)
        out = backend.gemm(a, a)
        diff = (out != np.eye(4, dtype=np.float32)).sum()
        assert diff == 1
