"""Numpy kernels: numerical correctness against hand-computed references."""

import numpy as np
import pytest

from repro.graph.node import Node
from repro.ops import KernelContext, KernelError, evaluate_node, get_backend, registered_ops


def run_op(op_type: str, inputs: list[np.ndarray], attrs: dict | None = None,
           backend: str = "mkl-sim") -> np.ndarray:
    node = Node(
        name="n",
        op_type=op_type,
        inputs=[f"i{k}" for k in range(len(inputs))],
        outputs=["o"],
        attrs=attrs or {},
    )
    ctx = KernelContext(blas=get_backend(backend))
    return evaluate_node(node, inputs, ctx)[0]


class TestConv:
    def test_identity_kernel(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        w = np.ones((1, 1, 1, 1), dtype=np.float32)
        assert np.array_equal(run_op("Conv", [x, w]), x)

    def test_sum_kernel_3x3(self):
        x = np.ones((1, 1, 3, 3), dtype=np.float32)
        w = np.ones((1, 1, 3, 3), dtype=np.float32)
        out = run_op("Conv", [x, w], {"pads": [0, 0, 0, 0]})
        assert out.shape == (1, 1, 1, 1)
        assert out[0, 0, 0, 0] == 9.0

    def test_stride_and_padding(self):
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        w = np.ones((1, 1, 3, 3), dtype=np.float32)
        out = run_op("Conv", [x, w], {"strides": [2, 2], "pads": [1, 1, 1, 1]})
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == 4.0  # corner sees 2x2 valid window

    def test_bias(self):
        x = np.zeros((1, 2, 2, 2), dtype=np.float32)
        w = np.zeros((3, 2, 1, 1), dtype=np.float32)
        b = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        out = run_op("Conv", [x, w, b])
        assert np.allclose(out[0, :, 0, 0], [1, 2, 3])

    def test_grouped_conv_independence(self):
        x = np.stack(
            [np.ones((4, 4), dtype=np.float32), 2 * np.ones((4, 4), dtype=np.float32)]
        ).reshape(1, 2, 4, 4)
        w = np.ones((2, 1, 1, 1), dtype=np.float32)
        out = run_op("Conv", [x, w], {"group": 2})
        assert np.allclose(out[0, 0], 1.0)
        assert np.allclose(out[0, 1], 2.0)

    def test_dilation(self):
        x = np.arange(25, dtype=np.float32).reshape(1, 1, 5, 5)
        w = np.ones((1, 1, 2, 2), dtype=np.float32)
        out = run_op("Conv", [x, w], {"dilations": [2, 2]})
        # window = {x[0,0], x[0,2], x[2,0], x[2,2]} = 0+2+10+12
        assert out[0, 0, 0, 0] == 24.0

    def test_matches_scipy_correlation(self):
        from scipy.signal import correlate2d

        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 1, 9, 9)).astype(np.float32)
        w = rng.normal(size=(1, 1, 3, 3)).astype(np.float32)
        out = run_op("Conv", [x, w], {"pads": [0, 0, 0, 0]})
        expected = correlate2d(x[0, 0], w[0, 0], mode="valid")
        assert np.allclose(out[0, 0], expected, atol=1e-4)


class TestDense:
    def test_gemm_with_bias(self):
        a = np.array([[1.0, 2.0]], dtype=np.float32)
        b = np.array([[3.0], [4.0]], dtype=np.float32)
        c = np.array([10.0], dtype=np.float32)
        assert run_op("Gemm", [a, b, c])[0, 0] == 21.0

    def test_gemm_transb(self):
        a = np.array([[1.0, 2.0]], dtype=np.float32)
        b = np.array([[3.0, 4.0]], dtype=np.float32)  # (1,2), transB -> (2,1)
        assert run_op("Gemm", [a, b], {"transB": 1})[0, 0] == 11.0

    def test_gemm_alpha_beta(self):
        a = np.eye(2, dtype=np.float32)
        b = np.eye(2, dtype=np.float32)
        c = np.ones((2, 2), dtype=np.float32)
        out = run_op("Gemm", [a, b, c], {"alpha": 2.0, "beta": 3.0})
        assert np.allclose(out, 2 * np.eye(2) + 3)

    def test_matmul(self):
        a = np.arange(6, dtype=np.float32).reshape(2, 3)
        b = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert np.allclose(run_op("MatMul", [a, b]), a @ b)


class TestNormalizationActivations:
    def test_batch_norm_formula(self):
        x = np.array([[[[2.0]]]], dtype=np.float32)
        scale = np.array([3.0], dtype=np.float32)
        shift = np.array([1.0], dtype=np.float32)
        mean = np.array([1.0], dtype=np.float32)
        var = np.array([4.0], dtype=np.float32)
        out = run_op("BatchNormalization", [x, scale, shift, mean, var], {"epsilon": 0.0})
        assert np.isclose(out[0, 0, 0, 0], 3.0 * (2 - 1) / 2 + 1)

    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        assert np.array_equal(run_op("Relu", [x]), [0, 0, 2])

    def test_sigmoid_midpoint(self):
        assert np.isclose(run_op("Sigmoid", [np.zeros(1, dtype=np.float32)])[0], 0.5)

    def test_hard_swish(self):
        x = np.array([-4.0, 0.0, 4.0], dtype=np.float32)
        out = run_op("HardSwish", [x])
        assert np.allclose(out, [0.0, 0.0, 4.0])

    def test_silu(self):
        x = np.array([0.0], dtype=np.float32)
        assert np.isclose(run_op("Silu", [x])[0], 0.0)

    def test_clip_relu6(self):
        x = np.array([-1.0, 3.0, 9.0], dtype=np.float32)
        assert np.array_equal(run_op("Clip", [x], {"min": 0.0, "max": 6.0}), [0, 3, 6])

    def test_softmax_sums_to_one(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 7)).astype(np.float32)
        out = run_op("Softmax", [x], {"axis": -1})
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-6)

    def test_softmax_stable_large_inputs(self):
        x = np.array([[1000.0, 1000.0]], dtype=np.float32)
        out = run_op("Softmax", [x], {"axis": -1})
        assert np.allclose(out, 0.5)


class TestPooling:
    def test_maxpool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = run_op("MaxPool", [x], {"kernel_shape": [2, 2], "strides": [2, 2]})
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_with_padding_ignores_pad(self):
        x = np.full((1, 1, 2, 2), -5.0, dtype=np.float32)
        out = run_op("MaxPool", [x], {"kernel_shape": [3, 3], "strides": [1, 1], "pads": [1, 1, 1, 1]})
        assert np.all(out == -5.0)  # padding must not contribute zeros

    def test_avgpool_excludes_padding(self):
        x = np.full((1, 1, 2, 2), 4.0, dtype=np.float32)
        out = run_op("AveragePool", [x], {"kernel_shape": [2, 2], "strides": [1, 1], "pads": [1, 1, 1, 1]})
        assert np.allclose(out[0, 0, 0, 0], 4.0)  # count_include_pad = 0

    def test_global_avg_pool(self):
        x = np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2)
        out = run_op("GlobalAveragePool", [x])
        assert np.allclose(out.reshape(2), [1.5, 5.5])


class TestStructural:
    def test_concat_axis1(self):
        a = np.ones((1, 2, 2, 2), dtype=np.float32)
        b = np.zeros((1, 3, 2, 2), dtype=np.float32)
        out = run_op("Concat", [a, b], {"axis": 1})
        assert out.shape == (1, 5, 2, 2)

    def test_identity_and_dropout(self):
        x = np.arange(4, dtype=np.float32)
        assert np.array_equal(run_op("Identity", [x]), x)
        assert np.array_equal(run_op("Dropout", [x]), x)

    def test_zero_add_exact(self):
        x = np.arange(4, dtype=np.float32)
        assert np.array_equal(run_op("ZeroAdd", [x]), x)

    def test_reshape_flatten(self):
        x = np.arange(12, dtype=np.float32).reshape(2, 3, 2)
        assert run_op("Reshape", [x], {"shape": [4, 3]}).shape == (4, 3)
        assert run_op("Flatten", [x], {"axis": 1}).shape == (2, 6)

    def test_transpose(self):
        x = np.arange(6, dtype=np.float32).reshape(2, 3)
        assert np.array_equal(run_op("Transpose", [x], {"perm": [1, 0]}), x.T)

    def test_pad_constant(self):
        x = np.ones((1, 1), dtype=np.float32)
        out = run_op("Pad", [x], {"pads": [1, 1, 1, 1], "value": 7.0})
        assert out.shape == (3, 3)
        assert out[0, 0] == 7.0


class TestRegistry:
    def test_unknown_op(self):
        node = Node(name="n", op_type="Nope", inputs=[], outputs=["o"])
        with pytest.raises(KernelError, match="no kernel"):
            evaluate_node(node, [], KernelContext())

    def test_all_shape_rules_have_kernels(self):
        # Every op the zoo emits must be executable.
        needed = {
            "Conv", "Gemm", "MatMul", "BatchNormalization", "Relu", "Sigmoid",
            "HardSigmoid", "HardSwish", "Silu", "Clip", "Softmax", "MaxPool",
            "AveragePool", "GlobalAveragePool", "Add", "Mul", "Concat",
            "Flatten", "Reshape", "Identity",
        }
        assert needed <= set(registered_ops())
