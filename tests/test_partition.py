"""Partitioning: Algorithm 1 invariants, slicer, balance search, verification."""

import pytest

from repro.partition import (
    ContractionSettings,
    PartitionError,
    PartitionSet,
    balance_score,
    find_balanced_partition,
    partition_costs,
    random_contraction,
    slice_by_indices,
    slice_by_names,
    verify_partition_set,
)
from repro.partition.partition import Partition
from repro.zoo import build_model


@pytest.fixture(scope="module")
def branchy_model():
    # small-resnet has residual branches: the interesting case for
    # contraction acyclicity.
    return build_model("small-resnet", input_size=16, blocks_per_stage=2)


class TestRandomContraction:
    @pytest.mark.parametrize("target", [1, 2, 3, 5, 8])
    def test_produces_target_partitions(self, branchy_model, target):
        ps = random_contraction(branchy_model, ContractionSettings(target, seed=0))
        assert len(ps) == target

    def test_partitions_cover_all_nodes_exactly_once(self, branchy_model):
        ps = random_contraction(branchy_model, ContractionSettings(4, seed=1))
        names = [n for p in ps.partitions for n in p.node_names]
        assert sorted(names) == sorted(n.name for n in branchy_model.nodes)

    def test_quotient_is_acyclic_forward_only(self, branchy_model):
        # validate() raises on backward data flow; run several seeds.
        for seed in range(5):
            random_contraction(branchy_model, ContractionSettings(5, seed=seed)).validate()

    def test_seeded_determinism(self, branchy_model):
        a = random_contraction(branchy_model, ContractionSettings(4, seed=9))
        b = random_contraction(branchy_model, ContractionSettings(4, seed=9))
        assert [p.node_names for p in a.partitions] == [p.node_names for p in b.partitions]

    def test_different_seeds_differ(self, branchy_model):
        a = random_contraction(branchy_model, ContractionSettings(4, seed=1))
        b = random_contraction(branchy_model, ContractionSettings(4, seed=2))
        assert [p.node_names for p in a.partitions] != [p.node_names for p in b.partitions]

    def test_too_many_partitions_rejected(self, branchy_model):
        with pytest.raises(PartitionError, match="cannot split"):
            random_contraction(
                branchy_model,
                ContractionSettings(len(branchy_model.nodes) + 1),
            )

    def test_custom_constraint_respected(self, branchy_model):
        # A very tight constraint forces the relax-fallback but must still
        # terminate with the right count.
        settings = ContractionSettings(
            3, seed=0, constraint_fn=lambda merged, total, t: merged <= total / 10
        )
        ps = random_contraction(branchy_model, settings)
        assert len(ps) == 3

    def test_custom_weight_function(self, branchy_model):
        settings = ContractionSettings(4, seed=0, weight_fn=lambda a, b: 1.0)
        ps = random_contraction(branchy_model, settings)
        assert len(ps) == 4

    def test_balance_default_reasonable(self, branchy_model):
        ps = find_balanced_partition(branchy_model, 4, restarts=6, seed=0)
        assert balance_score(ps) < 2.5


class TestPartitionSet:
    def test_checkpoint_tensors_chain(self, branchy_model):
        ps = random_contraction(branchy_model, ContractionSettings(3, seed=0))
        produced_so_far = set(s.name for s in branchy_model.inputs)
        for index in range(len(ps)):
            sub = ps.subgraph(index)
            for spec in sub.inputs:
                assert spec.name in produced_so_far
            produced_so_far |= {s.name for s in sub.outputs}

    def test_checkpoint_bytes_positive_internal(self, branchy_model):
        ps = random_contraction(branchy_model, ContractionSettings(3, seed=0))
        for index in range(len(ps) - 1):
            assert ps.checkpoint_bytes(index) > 0

    def test_duplicate_node_rejected(self, branchy_model):
        first = branchy_model.nodes[0].name
        parts = [
            Partition(index=0, node_names=(first,)),
            Partition(index=1, node_names=tuple(n.name for n in branchy_model.nodes)),
        ]
        with pytest.raises(PartitionError, match="in partitions"):
            PartitionSet(model=branchy_model, partitions=parts)

    def test_missing_node_rejected(self, branchy_model):
        parts = [Partition(index=0, node_names=(branchy_model.nodes[0].name,))]
        with pytest.raises(PartitionError, match="not covered"):
            PartitionSet(model=branchy_model, partitions=parts)

    def test_backward_flow_rejected(self, branchy_model):
        order = [n.name for n in branchy_model.topological_order()]
        parts = [
            Partition(index=0, node_names=tuple(order[5:])),
            Partition(index=1, node_names=tuple(order[:5])),
        ]
        with pytest.raises(PartitionError, match="backward"):
            PartitionSet(model=branchy_model, partitions=parts)

    def test_describe_mentions_partitions(self, branchy_model):
        ps = random_contraction(branchy_model, ContractionSettings(3, seed=0))
        text = ps.describe()
        assert "3 partitions" in text


class TestSlicer:
    def test_slice_by_indices(self, tiny_cnn):
        ps = slice_by_indices(tiny_cnn, [2, 4])
        assert len(ps) == 3
        verify_partition_set(ps)

    def test_slice_by_names(self, tiny_cnn):
        order = [n.name for n in tiny_cnn.topological_order()]
        ps = slice_by_names(tiny_cnn, [order[1], order[3]])
        assert len(ps) == 3

    def test_out_of_range_cut(self, tiny_cnn):
        with pytest.raises(PartitionError):
            slice_by_indices(tiny_cnn, [len(tiny_cnn.nodes)])

    def test_unknown_name(self, tiny_cnn):
        with pytest.raises(PartitionError, match="unknown node"):
            slice_by_names(tiny_cnn, ["ghost"])

    def test_empty_cuts_rejected(self, tiny_cnn):
        with pytest.raises(PartitionError):
            slice_by_indices(tiny_cnn, [])


class TestVerification:
    def test_staged_equals_full(self, branchy_model):
        ps = random_contraction(branchy_model, ContractionSettings(4, seed=3))
        verify_partition_set(ps)

    def test_corrupted_partition_detected(self, branchy_model):
        ps = random_contraction(branchy_model, ContractionSettings(4, seed=3))
        sub = ps.subgraph(1)
        weight_name = next(iter(sub.initializers))
        sub.initializers[weight_name] = sub.initializers[weight_name] * 2.0
        with pytest.raises(AssertionError, match="diverges"):
            verify_partition_set(ps)

    def test_costs_sum_to_model_cost(self, branchy_model):
        ps = random_contraction(branchy_model, ContractionSettings(4, seed=0))
        from repro.graph.flops import graph_flops

        assert sum(partition_costs(ps)) == pytest.approx(graph_flops(branchy_model), rel=1e-9)

    def test_multi_restart_improves_or_equals(self, branchy_model):
        single = random_contraction(branchy_model, ContractionSettings(4, seed=0))
        best = find_balanced_partition(branchy_model, 4, restarts=8, seed=0)
        assert balance_score(best) <= balance_score(single) + 1e-9

    def test_parallel_search_matches_sequential(self, branchy_model):
        seq = find_balanced_partition(branchy_model, 4, restarts=4, seed=0)
        par = find_balanced_partition(branchy_model, 4, restarts=4, seed=0, workers=2)
        assert [p.node_names for p in seq.partitions] == [p.node_names for p in par.partitions]
