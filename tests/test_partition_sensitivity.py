"""Sensitivity-aware partitioning: isolate the fine-tuned layers."""

import numpy as np
import pytest

from repro.partition import (
    ContractionSettings,
    PartitionError,
    random_contraction,
    sensitivity_partition,
    verify_partition_set,
)
from repro.zoo import build_model


@pytest.fixture(scope="module")
def model():
    return build_model("small-resnet", input_size=16, blocks_per_stage=1)


@pytest.fixture(scope="module")
def tail_nodes(model):
    """The 'fine-tuned' layers: the classifier head (last 5 topo nodes)."""
    order = [n.name for n in model.topological_order()]
    return set(order[-5:])


class TestSensitivityPartition:
    def test_sensitive_nodes_isolated(self, model, tail_nodes):
        plan = sensitivity_partition(model, 4, tail_nodes, seed=0)
        assert plan.purity == 1.0
        assignment = plan.partition_set.assignment()
        sensitive_parts = {assignment[n] for n in tail_nodes}
        assert sensitive_parts <= set(plan.sensitive_partitions)
        # No sensitive partition contains an insensitive node.
        for index in plan.sensitive_partitions:
            members = set(plan.partition_set.partitions[index].node_names)
            assert members <= tail_nodes

    def test_partitioning_still_correct(self, model, tail_nodes):
        plan = sensitivity_partition(model, 4, tail_nodes, seed=0)
        verify_partition_set(plan.partition_set)

    def test_mvx_map_targets_sensitive(self, model, tail_nodes):
        plan = sensitivity_partition(model, 4, tail_nodes, seed=0)
        mvx = plan.mvx_partitions(variants=3)
        assert set(mvx) == set(plan.sensitive_partitions)
        assert all(v == 3 for v in mvx.values())

    def test_deployment_protects_exactly_the_head(self, model, tail_nodes, small_input):
        from repro.mvx import MvteeSystem
        from repro.mvx.config import MvxConfig
        from repro.mvx.bootstrap import bootstrap_deployment
        from repro.mvx.scheduler import run
        from repro.variants.pool import build_pool, diversified_specs

        plan = sensitivity_partition(model, 4, tail_nodes, seed=0)
        n = len(plan.partition_set)
        config = MvxConfig.selective(n, plan.mvx_partitions())
        specs = [
            s
            for claim in config.claims
            for s in diversified_specs(claim.partition_index, claim.num_variants, seed=0)
        ]
        pool = build_pool(plan.partition_set, specs, verify=False)
        _, monitor, _, _ = bootstrap_deployment(pool, config)
        results, stats = run(monitor, [{"input": small_input}])
        assert stats.checkpoints_evaluated == len(plan.sensitive_partitions)

    def test_unknown_sensitive_node_rejected(self, model):
        with pytest.raises(PartitionError, match="unknown sensitive"):
            sensitivity_partition(model, 3, {"ghost"})

    def test_empty_sensitive_set_rejected(self, model):
        with pytest.raises(PartitionError, match="non-empty"):
            sensitivity_partition(model, 3, set())

    def test_plain_contraction_usually_mixes(self, model, tail_nodes):
        """Without the veto the head typically shares a partition with body nodes."""
        ps = random_contraction(model, ContractionSettings(4, seed=0))
        assignment = ps.assignment()
        head_parts = {assignment[n] for n in tail_nodes}
        mixed = any(
            not set(ps.partitions[p].node_names) <= tail_nodes for p in head_parts
        )
        assert mixed  # motivates the sensitivity-aware mode


class TestMergeVetoMechanism:
    def test_veto_respected_when_feasible(self, model):
        order = [n.name for n in model.topological_order()]
        forbidden = set(order[:3])

        def veto(a, b):
            a_in = any(m in forbidden for m in a)
            b_in = any(m in forbidden for m in b)
            return a_in != b_in

        ps = random_contraction(
            model,
            ContractionSettings(5, seed=1, balance_slack=3.0, merge_veto=veto),
        )
        assignment = ps.assignment()
        parts_of_forbidden = {assignment[n] for n in forbidden}
        for index in parts_of_forbidden:
            members = set(ps.partitions[index].node_names)
            assert members <= forbidden  # the veto kept the group pure
