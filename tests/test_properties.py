"""Property-based tests (hypothesis) on the core invariants.

Covers the data structures whose correctness everything else rests on:
the AEAD/sealing layer, the graph IR, partitioning, voting and the
consistency policy.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.aead import get_aead
from repro.crypto.chacha import chacha20_xor
from repro.crypto.kdf import hkdf_sha256
from repro.graph import GraphBuilder
from repro.mvx.consistency import ConsistencyPolicy
from repro.mvx.voting import VariantOutput, vote
from repro.partition import ContractionSettings, random_contraction
from repro.zoo import build_model

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class TestCryptoProperties:
    @given(
        key=st.binary(min_size=32, max_size=32),
        nonce=st.binary(min_size=12, max_size=12),
        plaintext=st.binary(max_size=512),
        aad=st.binary(max_size=64),
        name=st.sampled_from(["aes-gcm", "chacha20-poly1305"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_aead_roundtrip(self, key, nonce, plaintext, aad, name):
        aead = get_aead(name, key)
        assert aead.decrypt(nonce, aead.encrypt(nonce, plaintext, aad), aad) == plaintext

    @given(
        key=st.binary(min_size=32, max_size=32),
        nonce=st.binary(min_size=12, max_size=12),
        plaintext=st.binary(min_size=1, max_size=256),
        flip=st.integers(min_value=0, max_value=10_000),
        name=st.sampled_from(["aes-gcm", "chacha20-poly1305"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_aead_any_bitflip_detected(self, key, nonce, plaintext, flip, name):
        aead = get_aead(name, key)
        record = bytearray(aead.encrypt(nonce, plaintext))
        index = flip % (len(record) * 8)
        record[index // 8] ^= 1 << (index % 8)
        with pytest.raises(Exception):
            aead.decrypt(nonce, bytes(record))

    @given(
        key=st.binary(min_size=32, max_size=32),
        nonce=st.binary(min_size=12, max_size=12),
        counter=st.integers(min_value=0, max_value=2**30),
        data=st.binary(max_size=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_chacha_involution(self, key, nonce, counter, data):
        once = chacha20_xor(key, nonce, counter, data)
        assert chacha20_xor(key, nonce, counter, once) == data

    @given(
        ikm=st.binary(min_size=1, max_size=64),
        info_a=st.binary(max_size=32),
        info_b=st.binary(max_size=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_hkdf_domain_separation(self, ikm, info_a, info_b):
        a = hkdf_sha256(ikm, info=info_a)
        b = hkdf_sha256(ikm, info=info_b)
        assert (a == b) == (info_a == info_b)


def _random_chain_model(n_layers: int, seed: int):
    builder = GraphBuilder(f"prop-{n_layers}-{seed}", seed=seed)
    x = builder.input("x", (1, 3, 8, 8))
    rng = np.random.default_rng(seed)
    y = x
    channels = 3
    for i in range(n_layers):
        choice = rng.integers(3)
        if choice == 0:
            channels = int(rng.integers(2, 8))
            y = builder.conv(y, channels, kernel=3, pad=1)
        elif choice == 1:
            y = builder.relu(y)
        else:
            y = builder.batch_norm(y)
    builder.set_output(builder.softmax(builder.fc(builder.global_avg_pool(y), 4)))
    return builder.finish()


class TestGraphProperties:
    @given(n_layers=st.integers(min_value=1, max_value=8), seed=st.integers(0, 1000))
    @SLOW
    def test_random_models_validate_and_roundtrip(self, n_layers, seed):
        model = _random_chain_model(n_layers, seed)
        model.validate()
        from repro.graph.model import ModelGraph

        restored = ModelGraph.from_bytes(model.to_bytes())
        assert restored.structural_hash() == model.structural_hash()

    @given(n_layers=st.integers(min_value=2, max_value=8), seed=st.integers(0, 1000))
    @SLOW
    def test_topo_order_is_valid_permutation(self, n_layers, seed):
        model = _random_chain_model(n_layers, seed)
        order = model.topological_order()
        assert sorted(n.name for n in order) == sorted(n.name for n in model.nodes)


class TestPartitionProperties:
    @given(target=st.integers(min_value=1, max_value=6), seed=st.integers(0, 200))
    @SLOW
    def test_contraction_invariants(self, target, seed):
        model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
        ps = random_contraction(model, ContractionSettings(target, seed=seed))
        assert len(ps) == target
        names = sorted(n for p in ps.partitions for n in p.node_names)
        assert names == sorted(n.name for n in model.nodes)
        ps.validate()  # acyclicity / forward-flow

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_checkpoint_chain_closure(self, seed):
        model = build_model("small-resnet", input_size=16, blocks_per_stage=1)
        ps = random_contraction(model, ContractionSettings(4, seed=seed))
        available = set(s.name for s in model.inputs)
        for index in range(len(ps)):
            sub = ps.subgraph(index)
            assert {s.name for s in sub.inputs} <= available
            available |= {s.name for s in sub.outputs}


class TestVotingProperties:
    @staticmethod
    def _outputs(values):
        return [
            VariantOutput(f"v{i}", {"t": np.full(3, v, dtype=np.float32)})
            for i, v in enumerate(values)
        ]

    @given(value=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
           count=st.integers(min_value=1, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_identical_outputs_always_unanimous(self, value, count):
        result = vote(self._outputs([value] * count))
        assert result.unanimous and result.passed

    @given(
        good=st.integers(min_value=1, max_value=5),
        value=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_outlier_never_accepted_under_unanimity(self, good, value):
        outputs = self._outputs([value] * good + [value * 1000])
        result = vote(outputs)
        assert not result.passed
        assert f"v{good}" in result.dissenting or f"v{good}" in result.agreeing and good == 0

    @given(
        agree=st.integers(min_value=2, max_value=5),
        disagree=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=40, deadline=None)
    def test_majority_accepts_iff_strict_majority(self, agree, disagree):
        outputs = self._outputs([5.0] * agree + [9999.0 + i for i in range(disagree)])
        result = vote(outputs, strategy="majority")
        assert result.passed == (agree * 2 > agree + disagree)


class TestConsistencyProperties:
    @given(
        data=st.lists(st.floats(min_value=-1e4, max_value=1e4, width=32),
                      min_size=1, max_size=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_reflexive(self, data):
        arr = np.array(data, dtype=np.float32)
        assert ConsistencyPolicy().check_tensor("t", arr, arr).consistent

    @given(
        data=st.lists(st.floats(min_value=-100, max_value=100, width=32),
                      min_size=4, max_size=32),
        scale=st.floats(min_value=1e-7, max_value=1e-6),
    )
    @settings(max_examples=40, deadline=None)
    def test_tiny_relative_noise_tolerated(self, data, scale):
        arr = np.array(data, dtype=np.float32)
        noisy = arr * (1.0 + scale)
        assert ConsistencyPolicy().check_tensor("t", arr, noisy).consistent

    @given(
        data=st.lists(st.floats(min_value=1.0, max_value=100.0, width=32),
                      min_size=4, max_size=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_symmetric(self, data):
        rng = np.random.default_rng(0)
        a = np.array(data, dtype=np.float32)
        b = a + rng.normal(scale=0.5, size=a.shape).astype(np.float32)
        policy = ConsistencyPolicy()
        assert (
            policy.check_tensor("t", a, b).consistent
            == policy.check_tensor("t", b, a).consistent
        )
