"""Extended property-based tests: transforms, channels, slicing, padding."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.kdf import hkdf_sha256
from repro.partition import slice_by_indices, verify_partition_set
from repro.tee.channel import ChannelError, SecureChannel
from repro.variants.transforms import TransformError, apply_transforms, verify_equivalent
from repro.zoo import build_model

SLOW = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

# Transforms applicable to small-resnet regardless of seed.
SAFE_TRANSFORMS = [
    "dummy-identity",
    "dummy-zero-add",
    "commute-add",
    "channel-shuffle",
    "channel-duplicate",
    "dead-channel-insert",
    "split-conv",
    "selective-optimize",
]


@pytest.fixture(scope="module")
def model():
    return build_model("small-resnet", input_size=16, blocks_per_stage=1)


class TestTransformPipelineProperties:
    @given(
        pipeline=st.lists(st.sampled_from(SAFE_TRANSFORMS), min_size=1, max_size=4),
        seed=st.integers(0, 500),
    )
    @SLOW
    def test_random_pipelines_preserve_semantics(self, model, pipeline, seed):
        try:
            transformed = apply_transforms(model, pipeline, seed=seed)
        except TransformError:
            return  # a transform became inapplicable mid-pipeline: fine
        verify_equivalent(model, transformed, trials=1)

    @given(seed=st.integers(0, 500))
    @SLOW
    def test_transforms_never_change_io_signature(self, model, seed):
        transformed = apply_transforms(
            model, ["channel-shuffle", "split-conv"], seed=seed
        )
        assert [s.name for s in transformed.inputs] == [s.name for s in model.inputs]
        assert {s.name for s in transformed.outputs} == {s.name for s in model.outputs}
        assert [s.shape for s in transformed.outputs] == [s.shape for s in model.outputs]


class TestSlicerProperties:
    @given(cuts=st.sets(st.integers(min_value=0, max_value=5), min_size=1, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_any_valid_cut_set_verifies(self, cuts):
        model = build_model("tiny-cnn")
        ps = slice_by_indices(model, sorted(cuts))
        assert len(ps) == len(cuts) + 1
        verify_partition_set(ps)


def _channel_pair(oblivious: bool = False):
    key_a = hkdf_sha256(b"prop-a", length=32)
    key_b = hkdf_sha256(b"prop-b", length=32)
    sender = SecureChannel(
        send_key=key_a, recv_key=key_b, aead_name="chacha20-poly1305",
        peer_report=None, channel_id="prop", oblivious=oblivious,
    )
    receiver = SecureChannel(
        send_key=key_b, recv_key=key_a, aead_name="chacha20-poly1305",
        peer_report=None, channel_id="prop", oblivious=oblivious,
    )
    return sender, receiver


class TestChannelProperties:
    @given(
        payloads=st.lists(st.binary(max_size=600), min_size=1, max_size=12),
        oblivious=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_message_sequence_roundtrips_in_order(self, payloads, oblivious):
        sender, receiver = _channel_pair(oblivious)
        for payload in payloads:
            assert receiver.open(sender.protect(payload)) == payload

    @given(
        payloads=st.lists(st.binary(min_size=1, max_size=200), min_size=2, max_size=6),
        skip=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_skipping_any_record_breaks_the_stream(self, payloads, skip):
        sender, receiver = _channel_pair()
        records = [sender.protect(p) for p in payloads]
        skip = skip % len(records)
        with pytest.raises(ChannelError):
            for record in records[:skip]:
                receiver.open(record)
            receiver.open(records[skip + 1] if skip + 1 < len(records) else records[0])

    @given(size=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=40, deadline=None)
    def test_oblivious_records_are_bucketed(self, size):
        sender, _ = _channel_pair(oblivious=True)
        record = sender.protect(bytes(size))
        body = len(record) - 16  # strip the AEAD tag
        assert body >= SecureChannel.MIN_BUCKET
        assert (body & (body - 1)) == 0 or body % SecureChannel.MIN_BUCKET == 0
        assert body >= size + 8
