"""Negative paths of the bootstrap protocol: every failure is loud.

The initialization workflow (Figure 6) must reject -- not degrade --
when the environment misbehaves: tampered sealed files, wrong keys,
artifact/host mismatches, unknown platforms.
"""

import pytest

from repro.mvx import MonitorError, MvteeSystem
from repro.mvx.bootstrap import ModelOwner, Orchestrator
from repro.mvx.config import MvxConfig
from repro.mvx.monitor import Monitor
from repro.mvx.variant_host import VariantHost
from repro.partition import ContractionSettings, random_contraction
from repro.tee.attestation import Verifier
from repro.tee.hardware import SimulatedCpu
from repro.variants.pool import build_pool, diversified_specs


@pytest.fixture()
def setup(small_resnet):
    ps = random_contraction(small_resnet, ContractionSettings(2, seed=0))
    specs = [s for p in range(2) for s in diversified_specs(p, 1, seed=0)]
    pool = build_pool(ps, specs, verify=False)
    cpus = [SimulatedCpu("plat-0")]
    orchestrator = Orchestrator(cpus=cpus)
    monitor_enclave = orchestrator.place_monitor()
    verifier = Verifier()
    verifier.register_platform(cpus[0])
    verifier.trust_measurement(monitor_enclave.measurement)
    monitor = Monitor(enclave=monitor_enclave, verifier=verifier, pool=pool)
    owner = ModelOwner(verifier=verifier)
    config = MvxConfig.uniform(2, 1)
    return pool, orchestrator, monitor, owner, config


class TestBootstrapFailures:
    def test_tampered_stage2_manifest_fails_init(self, setup):
        pool, orchestrator, monitor, owner, config = setup
        artifact = pool.for_partition(0)[0]
        path = artifact.paths["stage2_manifest"]
        blob = bytearray(artifact.host_files[path])
        blob[-1] ^= 0xFF
        artifact.host_files[path] = bytes(blob)
        with pytest.raises(MonitorError, match="failed init"):
            owner.deploy(monitor, orchestrator, config)

    def test_tampered_model_blob_fails_init(self, setup):
        pool, orchestrator, monitor, owner, config = setup
        artifact = pool.for_partition(1)[0]
        path = artifact.paths["model"]
        blob = bytearray(artifact.host_files[path])
        blob[len(blob) // 2] ^= 0x01
        artifact.host_files[path] = bytes(blob)
        with pytest.raises(MonitorError, match="failed init"):
            owner.deploy(monitor, orchestrator, config)

    def test_tampered_init_binary_blocks_launch(self, setup):
        from repro.tee.enclave import EnclaveError

        pool, orchestrator, monitor, owner, config = setup
        artifact = pool.for_partition(0)[0]
        artifact.host_files[artifact.paths["init"]] = b"trojaned init"
        with pytest.raises(EnclaveError, match="hash mismatch"):
            owner.deploy(monitor, orchestrator, config)

    def test_wrong_key_fails_init(self, setup):
        pool, orchestrator, monitor, owner, config = setup
        # Swap the key records of the two artifacts: each variant gets a
        # key that cannot unseal its files.
        a = pool.for_partition(0)[0]
        b = pool.for_partition(1)[0]
        a.key_record, b.key_record = b.key_record, a.key_record
        with pytest.raises(MonitorError, match="failed init"):
            owner.deploy(monitor, orchestrator, config)

    def test_unknown_platform_fails_ra_tls(self, setup, small_resnet):
        pool, orchestrator, monitor, owner, config = setup
        rogue_cpu = SimulatedCpu("rogue-platform")  # no collateral registered
        artifact = pool.for_partition(0)[0]
        host = VariantHost.place(artifact, rogue_cpu)
        with pytest.raises(MonitorError, match="RA-TLS.*failed"):
            monitor.config = config
            monitor._bootstrap_variant(0, artifact, host, "init")

    def test_missing_host_placement_rejected(self, setup):
        pool, orchestrator, monitor, owner, config = setup
        nonce = b"\x01" * 32
        owner.attest_monitor(monitor, nonce)
        monitor.provision_config(config, nonce)
        with pytest.raises(MonitorError, match="did not place"):
            monitor.initialize_variants({})  # orchestrator placed nothing

    def test_config_partition_mismatch_rejected(self, setup):
        pool, orchestrator, monitor, owner, config = setup
        bad = MvxConfig.uniform(3, 1)  # deployment has 2 partitions
        with pytest.raises(MonitorError, match="config covers"):
            monitor.provision_config(bad, b"\x02" * 32)

    def test_init_failure_leaves_no_binding(self, setup):
        pool, orchestrator, monitor, owner, config = setup
        artifact = pool.for_partition(0)[0]
        path = artifact.paths["stage2_manifest"]
        artifact.host_files[path] = b"garbage"
        with pytest.raises(MonitorError):
            owner.deploy(monitor, orchestrator, config)
        assert artifact.variant_id not in monitor.ledger.active_bindings()


class TestSystemLevelGuards:
    def test_too_few_pool_variants_rejected(self, small_resnet):
        with pytest.raises(ValueError, match="requested"):
            MvteeSystem.deploy(
                small_resnet,
                num_partitions=2,
                mvx_partitions={0: 3},
                pool_variants_per_partition=1,  # pool smaller than the claim
                verify_partitions=False,
                verify_variants=False,
            )
