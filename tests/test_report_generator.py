"""The benchmark report generator (benchmarks/make_report.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

SPEC_PATH = Path(__file__).parent.parent / "benchmarks" / "make_report.py"


@pytest.fixture()
def report_module(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location("make_report", SPEC_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "RESULTS", tmp_path)
    return module, tmp_path


class TestReportBuilder:
    def test_empty_results_graceful(self, report_module):
        module, _ = report_module
        report = module.build_report()
        assert report.startswith("# Regenerated evaluation report")

    def test_fig9_table_rendered(self, report_module):
        module, results = report_module
        payload = {
            "resnet-50": {
                "2": {"seq_tput": 0.98, "seq_lat": 1.02, "pipe_tput": 1.9, "pipe_lat": 0.54}
            }
        }
        (results / "fig9_partitioning.json").write_text(json.dumps(payload))
        report = module.build_report()
        assert "Figure 9" in report
        assert "| resnet-50 | 2 | 0.98x" in report

    def test_accuracy_section(self, report_module):
        module, results = report_module
        (results / "security_accuracy.json").write_text(
            json.dumps({"unprotected_agreement": 0.34, "protected_agreement": 1.0})
        )
        report = module.build_report()
        assert "34.0%" in report and "100.0%" in report

    def test_main_writes_file(self, report_module):
        module, results = report_module
        assert module.main() == 0
        assert (results / "REPORT.md").exists()
