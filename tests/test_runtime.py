"""Runtimes: interpreter vs compiled agreement, optimizations, executors."""

import numpy as np
import pytest

from repro.runtime import (
    CompiledRuntime,
    InterpreterRuntime,
    RuntimeConfig,
    RuntimeError_,
    create_runtime,
)
from repro.runtime.optimizations import eliminate_identities, fold_batch_norm, optimize
from repro.variants.transforms import apply_transforms

ALL_CONFIGS = [
    RuntimeConfig(engine="interpreter", blas_backend="mkl-sim", optimization_level=0),
    RuntimeConfig(engine="interpreter", blas_backend="openblas-sim", optimization_level=1),
    RuntimeConfig(engine="interpreter", blas_backend="eigen-sim", optimization_level=1),
    RuntimeConfig(engine="compiled", blas_backend="mkl-sim", executor="graph"),
    RuntimeConfig(engine="compiled", blas_backend="eigen-sim", executor="vm"),
]


class TestRuntimeAgreement:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: f"{c.engine}-{c.blas_backend}-{c.executor}")
    def test_matches_reference(self, config, small_resnet, small_input, small_resnet_reference):
        runtime = create_runtime(config)
        runtime.prepare(small_resnet)
        outputs = runtime.run({"input": small_input})
        for name, expected in small_resnet_reference.items():
            assert np.allclose(outputs[name], expected, atol=1e-3)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            create_runtime(RuntimeConfig(engine="onnx"))

    def test_unprepared_run_rejected(self):
        runtime = InterpreterRuntime(RuntimeConfig())
        with pytest.raises(RuntimeError_, match="not prepared"):
            runtime.run({})

    def test_missing_feed_rejected(self, small_resnet):
        runtime = InterpreterRuntime(RuntimeConfig())
        runtime.prepare(small_resnet)
        with pytest.raises(RuntimeError_, match="missing input"):
            runtime.run({})

    def test_config_identity_stable(self):
        a = RuntimeConfig(engine="compiled", blas_backend="mkl-sim")
        b = RuntimeConfig(engine="compiled", blas_backend="mkl-sim")
        assert a.identity() == b.identity()
        assert a.identity() != RuntimeConfig(engine="interpreter").identity()

    def test_config_json_roundtrip(self):
        config = RuntimeConfig(
            engine="compiled",
            blas_backend="eigen-sim",
            executor="vm",
            compiler_flags=("asan",),
            label="v3",
        )
        assert RuntimeConfig.from_json(config.to_json()) == config


class TestOptimizations:
    def test_identity_elimination(self, small_resnet, small_input, small_resnet_reference):
        transformed = apply_transforms(small_resnet, ["dummy-identity", "dummy-zero-add"], seed=0)
        cleaned = eliminate_identities(transformed)
        assert len(cleaned.nodes) == len(small_resnet.nodes)
        runtime = InterpreterRuntime(RuntimeConfig(optimization_level=0))
        runtime.prepare(cleaned)
        out = runtime.run({"input": small_input})
        for name, expected in small_resnet_reference.items():
            assert np.allclose(out[name], expected, atol=1e-5)

    def test_bn_folding_removes_bn_nodes(self, small_resnet):
        folded = fold_batch_norm(small_resnet)
        original_bn = sum(1 for n in small_resnet.nodes if n.op_type == "BatchNormalization")
        remaining_bn = sum(1 for n in folded.nodes if n.op_type == "BatchNormalization")
        assert original_bn > 0
        assert remaining_bn == 0

    def test_bn_folding_numerically_equivalent(self, small_resnet, small_input, small_resnet_reference):
        folded = fold_batch_norm(small_resnet)
        runtime = InterpreterRuntime(RuntimeConfig(optimization_level=0))
        runtime.prepare(folded)
        out = runtime.run({"input": small_input})
        for name, expected in small_resnet_reference.items():
            assert np.allclose(out[name], expected, atol=1e-3)

    def test_level_zero_is_noop(self, small_resnet):
        assert optimize(small_resnet, 0) is small_resnet

    def test_orphaned_initializers_dropped(self, small_resnet):
        folded = fold_batch_norm(small_resnet)
        used = {i for n in folded.nodes for i in n.inputs}
        assert set(folded.initializers) <= used


class TestCompiledRuntime:
    def test_autotune_produces_schedules(self, small_resnet):
        runtime = CompiledRuntime(RuntimeConfig(engine="compiled", tuning_trials=3))
        runtime.prepare(small_resnet)
        schedules = {c.schedule for c in runtime._program if c.node.op_type == "Conv"}
        assert any(s.startswith("tile=") for s in schedules)

    def test_tuning_disabled(self, small_resnet):
        runtime = CompiledRuntime(RuntimeConfig(engine="compiled", tuning_trials=0))
        runtime.prepare(small_resnet)
        assert all(c.schedule == "default" for c in runtime._program)

    def test_vm_and_graph_agree(self, small_resnet, small_input):
        outs = []
        for executor in ("graph", "vm"):
            runtime = CompiledRuntime(RuntimeConfig(engine="compiled", executor=executor))
            runtime.prepare(small_resnet)
            outs.append(runtime.run({"input": small_input}))
        for name in outs[0]:
            assert np.allclose(outs[0][name], outs[1][name], atol=1e-5)

    def test_backend_fault_reaches_tuned_layers(self, small_resnet, small_input):
        from repro.runtime.faults import backend_bitflip_fault

        runtime = CompiledRuntime(RuntimeConfig(engine="compiled"))
        runtime.prepare(small_resnet)
        clean = runtime.run({"input": small_input})
        runtime.install_backend_fault(backend_bitflip_fault(bit=30))
        dirty = runtime.run({"input": small_input})
        name = next(iter(clean))
        assert not np.allclose(clean[name], dirty[name], atol=1e-3, equal_nan=False)
