"""Fault injection: single-implementation impact, crash semantics."""

import numpy as np
import pytest

from repro.runtime import (
    FaultInjector,
    InterpreterRuntime,
    RuntimeConfig,
    RuntimeCrash,
    create_runtime,
    flip_weight_bit,
)


@pytest.fixture()
def prepared(small_resnet):
    runtime = InterpreterRuntime(RuntimeConfig(optimization_level=0))
    runtime.prepare(small_resnet)
    return runtime


class TestWeightBitFlip:
    def test_high_exponent_flip_changes_output(self, small_resnet, small_input, small_resnet_reference):
        model = small_resnet.copy()
        name = next(k for k in model.initializers if k.endswith(".w"))
        model.initializers[name] = model.initializers[name].copy()
        flip_weight_bit(model, name, 0, 30)
        runtime = InterpreterRuntime(RuntimeConfig(optimization_level=0))
        runtime.prepare(model)
        out = runtime.run({"input": small_input})
        ref_name = next(iter(small_resnet_reference))
        assert not np.allclose(
            out[ref_name], small_resnet_reference[ref_name], atol=1e-3, equal_nan=False
        )

    def test_flip_is_involution(self, small_resnet):
        model = small_resnet.copy()
        name = next(k for k in model.initializers if k.endswith(".w"))
        model.initializers[name] = model.initializers[name].copy()
        before = model.initializers[name].copy()
        flip_weight_bit(model, name, 3, 17)
        flip_weight_bit(model, name, 3, 17)
        assert np.array_equal(model.initializers[name], before)

    def test_low_mantissa_flip_is_benign(self, small_resnet, small_input, small_resnet_reference):
        model = small_resnet.copy()
        name = next(k for k in model.initializers if k.endswith(".w"))
        model.initializers[name] = model.initializers[name].copy()
        flip_weight_bit(model, name, 0, 0)  # lowest mantissa bit
        runtime = InterpreterRuntime(RuntimeConfig(optimization_level=0))
        runtime.prepare(model)
        out = runtime.run({"input": small_input})
        ref_name = next(iter(small_resnet_reference))
        assert np.allclose(out[ref_name], small_resnet_reference[ref_name], atol=1e-2)

    def test_bad_arguments(self, small_resnet):
        with pytest.raises(KeyError):
            flip_weight_bit(small_resnet, "ghost", 0, 0)
        name = next(k for k in small_resnet.initializers if k.endswith(".w"))
        with pytest.raises(IndexError):
            flip_weight_bit(small_resnet, name, 10**9, 0)
        with pytest.raises(ValueError):
            flip_weight_bit(small_resnet, name, 0, 40)


class TestFaultInjector:
    def test_crash_only_on_trigger(self, prepared, small_input):
        injector = FaultInjector(prepared)
        injector.arm_op_crash(
            "Conv", lambda node, ins: bool(np.any(np.abs(ins[0]) > 1e30))
        )
        prepared.run({"input": small_input})  # benign passes
        evil = small_input.copy()
        evil[0, 0, 0, 0] = 1e38
        with pytest.raises(RuntimeCrash):
            prepared.run({"input": evil})

    def test_corruption_changes_output(self, prepared, small_input, small_resnet_reference):
        injector = FaultInjector(prepared)
        injector.arm_op_corruption("Gemm", scale=50.0)
        out = prepared.run({"input": small_input})
        name = next(iter(out))
        assert not np.allclose(out[name], small_resnet_reference[name], atol=1e-3)

    def test_disarm_restores(self, prepared, small_input, small_resnet_reference):
        injector = FaultInjector(prepared)
        injector.arm_backend_bitflip(bit=30)
        injector.arm_op_corruption("Gemm")
        injector.disarm()
        assert injector.armed == []
        out = prepared.run({"input": small_input})
        name = next(iter(out))
        assert np.allclose(out[name], small_resnet_reference[name], atol=1e-4)

    def test_fault_isolated_to_one_runtime(self, small_resnet, small_input):
        a = create_runtime(RuntimeConfig(blas_backend="openblas-sim", optimization_level=0))
        b = create_runtime(RuntimeConfig(blas_backend="openblas-sim", optimization_level=0))
        a.prepare(small_resnet)
        b.prepare(small_resnet)
        FaultInjector(a).arm_backend_bitflip(bit=30)
        out_a = a.run({"input": small_input})
        out_b = b.run({"input": small_input})
        name = next(iter(out_a))
        assert not np.allclose(out_a[name], out_b[name], atol=1e-3, equal_nan=False)
