"""Functional equivalence of sequential and pipelined scheduling.

The pipelined scheduler interleaves stages across batches; the contract
is that interleaving is *invisible* functionally: same outputs on clean
runs, and on a mid-pipeline divergence the same request set fails.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mvx import (
    InferenceOptions,
    InferenceService,
    MvteeSystem,
    RequestState,
    ResponseAction,
    SchedulingMode,
)
from repro.runtime.faults import FaultInjector

NUM_BATCHES = 6


def deploy(small_resnet, *, response=ResponseAction.HALT):
    system = MvteeSystem.deploy(
        small_resnet,
        num_partitions=3,
        mvx_partitions={1: 3},
        seed=0,
        verify_partitions=False,
        verify_variants=False,
    )
    system.monitor.response_action = response
    return system


def batch_stream(count=NUM_BATCHES):
    return [
        {
            "input": np.random.default_rng(seed)
            .normal(size=(1, 3, 16, 16))
            .astype(np.float32)
        }
        for seed in range(count)
    ]


def arm_divergence(system):
    """Corrupt one replica of the middle (MVX) partition."""
    victim = system.monitor.stage_connections(1)[0]
    FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)


class TestCleanEquivalence:
    def test_multi_batch_outputs_identical(self, small_resnet):
        system = deploy(small_resnet)
        batches = batch_stream()
        sequential = system.infer_batches(
            batches, InferenceOptions(scheduling=SchedulingMode.SEQUENTIAL)
        )
        pipelined = system.infer_batches(
            batches, InferenceOptions(scheduling=SchedulingMode.PIPELINED)
        )
        assert len(sequential) == len(pipelined) == NUM_BATCHES
        for seq_out, pipe_out in zip(sequential, pipelined):
            assert seq_out.keys() == pipe_out.keys()
            for name in seq_out:
                np.testing.assert_array_equal(seq_out[name], pipe_out[name])

    def test_stats_agree_on_work_done(self, small_resnet):
        system = deploy(small_resnet)
        batches = batch_stream()
        system.infer_batches(
            batches, InferenceOptions(scheduling=SchedulingMode.SEQUENTIAL)
        )
        seq_stats = system.last_stats
        system.infer_batches(
            batches, InferenceOptions(scheduling=SchedulingMode.PIPELINED)
        )
        pipe_stats = system.last_stats
        assert seq_stats.batches == pipe_stats.batches == NUM_BATCHES
        assert seq_stats.stage_executions == pipe_stats.stage_executions
        assert seq_stats.checkpoints_evaluated == pipe_stats.checkpoints_evaluated


class TestDivergenceEquivalence:
    @pytest.mark.parametrize("pipelined", [False, True], ids=["sequential", "pipelined"])
    def test_divergence_detected_mid_pipeline(self, small_resnet, pipelined):
        system = deploy(small_resnet, response=ResponseAction.DROP_VARIANT)
        arm_divergence(system)
        options = InferenceOptions(
            scheduling=SchedulingMode.PIPELINED if pipelined else SchedulingMode.SEQUENTIAL
        )
        results = system.infer_batches(batch_stream(), options)
        # Detection fired at the partition-1 checkpoint, mid-pipeline,
        # and the surviving replicas carried every batch to completion.
        assert len(system.monitor.divergence_events()) >= 1
        assert all(e.partition_index == 1 for e in system.monitor.divergence_events())
        assert len(results) == NUM_BATCHES
        assert len(system.monitor.stage_connections(1)) == 2

    def test_both_paths_fail_the_same_request_set(self, small_resnet):
        failed_sets = {}
        result_sets = {}
        for pipelined in (False, True):
            system = deploy(small_resnet, response=ResponseAction.HALT)
            arm_divergence(system)
            service = InferenceService(system, pipelined=pipelined)
            ids = [service.submit(feeds) for feeds in batch_stream()]
            transitioned = service.drain()
            states = {rid: service.status(rid) for rid in ids}
            failed_sets[pipelined] = {
                rid for rid, state in states.items() if state is RequestState.FAILED
            }
            result_sets[pipelined] = {
                rid for rid, state in states.items() if state is RequestState.DONE
            }
            # HALT aborts the whole in-flight drain at the first checkpoint.
            assert transitioned == NUM_BATCHES
            assert len(system.monitor.divergence_events()) >= 1
        assert failed_sets[False] == failed_sets[True]
        assert result_sets[False] == result_sets[True] == set()
