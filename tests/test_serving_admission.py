"""Admission control and micro-batching, in isolation.

These are pure queueing tests: no deployment, no variants.  The
engine-level integration lives in test_serving_engine.py.
"""

from __future__ import annotations

import threading

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.serving import (
    AdmissionQueue,
    BatchPolicy,
    EngineStopped,
    MicroBatcher,
    Overloaded,
)


class _Item:
    """A queue item carrying the admission timestamp the batcher reads."""

    def __init__(self, tag: int, enqueued_at: float = 0.0):
        self.tag = tag
        self.enqueued_at = enqueued_at


class TestAdmissionQueue:
    def test_fifo_within_capacity(self):
        queue = AdmissionQueue(4, registry=MetricsRegistry())
        for tag in range(4):
            queue.offer(_Item(tag))
        assert [queue.take(timeout=0).tag for _ in range(4)] == [0, 1, 2, 3]
        assert queue.take(timeout=0) is None

    def test_over_capacity_is_shed_not_grown(self):
        registry = MetricsRegistry()
        queue = AdmissionQueue(2, registry=registry)
        queue.offer(_Item(0))
        queue.offer(_Item(1))
        with pytest.raises(Overloaded):
            queue.offer(_Item(2))
        with pytest.raises(Overloaded):
            queue.offer(_Item(3))
        assert len(queue) == 2  # bounded: the burst did not grow the queue
        assert registry.counter("mvtee_requests_shed_total").total() == 2

    def test_depth_gauge_tracks_transitions(self):
        registry = MetricsRegistry()
        queue = AdmissionQueue(8, registry=registry)
        gauge = registry.gauge("mvtee_queue_depth")
        queue.offer(_Item(0))
        queue.offer(_Item(1))
        assert gauge.value() == 2
        queue.take(timeout=0)
        assert gauge.value() == 1

    def test_closed_queue_refuses_offers_but_drains(self):
        queue = AdmissionQueue(4, registry=MetricsRegistry())
        queue.offer(_Item(0))
        queue.close()
        with pytest.raises(EngineStopped):
            queue.offer(_Item(1))
        assert queue.take(timeout=0).tag == 0  # admitted work still drains
        assert queue.take(timeout=0) is None  # then immediate None, no wait

    def test_close_wakes_blocked_taker(self):
        queue = AdmissionQueue(4, registry=MetricsRegistry())
        results = []

        def taker():
            results.append(queue.take(timeout=30.0))

        thread = threading.Thread(target=taker)
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results == [None]

    def test_take_hands_item_to_blocked_consumer(self):
        queue = AdmissionQueue(4, registry=MetricsRegistry())
        results = []

        def taker():
            results.append(queue.take(timeout=30.0))

        thread = threading.Thread(target=taker)
        thread.start()
        queue.offer(_Item(7))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results[0].tag == 7


class TestMicroBatcher:
    def test_coalesces_up_to_max_batch_size(self):
        registry = MetricsRegistry()
        queue = AdmissionQueue(16, registry=registry)
        for tag in range(7):
            queue.offer(_Item(tag))
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=4), registry=registry)
        assert [i.tag for i in batcher.next_batch()] == [0, 1, 2, 3]
        assert [i.tag for i in batcher.next_batch()] == [4, 5, 6]

    def test_empty_queue_polls_out(self):
        queue = AdmissionQueue(4, registry=MetricsRegistry())
        batcher = MicroBatcher(queue, BatchPolicy(), registry=MetricsRegistry())
        assert batcher.next_batch(poll_s=0.01) == []

    def test_zero_wait_still_sweeps_backlog(self):
        # max_wait_s=0 must not degrade to single-request batches when a
        # burst is already queued.
        registry = MetricsRegistry()
        queue = AdmissionQueue(16, registry=registry)
        for tag in range(5):
            queue.offer(_Item(tag))
        batcher = MicroBatcher(
            queue, BatchPolicy(max_batch_size=8, max_wait_s=0.0), registry=registry
        )
        assert len(batcher.next_batch()) == 5

    def test_batch_size_and_queue_wait_recorded(self):
        registry = MetricsRegistry()
        queue = AdmissionQueue(16, registry=registry)
        now = 100.0
        for tag in range(3):
            queue.offer(_Item(tag, enqueued_at=now - 0.5))
        batcher = MicroBatcher(
            queue,
            BatchPolicy(max_batch_size=8, max_wait_s=0.0),
            registry=registry,
            clock=lambda: now,
        )
        batcher.next_batch()
        sizes = registry.histogram("mvtee_batch_size")
        assert sizes.count() == 1
        assert sizes.sum() == 3
        waits = registry.histogram("mvtee_queue_wait_seconds")
        assert waits.count() == 3
        assert waits.sum() == pytest.approx(1.5)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_s=-1.0)
        with pytest.raises(ValueError):
            AdmissionQueue(0, registry=MetricsRegistry())
