"""The concurrent serving engine and the parallel stage executor."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.mvx import (
    InferenceOptions,
    MonitorError,
    MvteeSystem,
    ResponseAction,
)
from repro.mvx.voting import VariantOutput
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import KIND_ENGINE_ERROR, FlightRecorder
from repro.observability.sinks import Sinks
from repro.runtime.faults import FaultInjector
from repro.serving import (
    DeadlineExceeded,
    EngineStopped,
    Overloaded,
    ParallelStageExecutor,
    ServingEngine,
    ServingPolicy,
    TicketState,
    open_loop_burst,
    settle_burst,
)

SERVING_METRIC_NAMES = (
    "mvtee_queue_depth",
    "mvtee_queue_wait_seconds",
    "mvtee_batch_size",
    "mvtee_requests_shed_total",
    "mvtee_requests_timeout_total",
)


@pytest.fixture()
def system(small_resnet):
    deployed = MvteeSystem.deploy(
        small_resnet,
        num_partitions=3,
        mvx_partitions={1: 3},
        seed=0,
        verify_partitions=False,
        verify_variants=False,
    )
    deployed.monitor.response_action = ResponseAction.DROP_VARIANT
    return deployed


def feeds_for(seed: int):
    return {
        "input": np.random.default_rng(seed)
        .normal(size=(1, 3, 16, 16))
        .astype(np.float32)
    }


class TestServingEngine:
    def test_serves_and_matches_reference(self, system, small_resnet_reference):
        with system.serving_engine() as engine:
            tickets = [engine.submit(feeds_for(0)) for _ in range(3)]
            results = [t.result(timeout=30.0) for t in tickets]
        name = next(iter(small_resnet_reference))
        for result in results:
            assert np.allclose(result[name], small_resnet_reference[name], atol=1e-2)
        assert all(t.state is TicketState.DONE for t in tickets)

    def test_burst_is_shed_with_overloaded(self, system):
        engine = system.serving_engine(policy=ServingPolicy(capacity=4))
        # Not started: the queue fills deterministically, like a stalled worker.
        tickets, report = open_loop_burst(engine, [feeds_for(i) for i in range(20)])
        assert report.shed == 16
        assert len(tickets) == 4
        assert engine.queue_depth == 4  # bounded, not 20
        shed = engine.registry.counter("mvtee_requests_shed_total").total()
        assert shed == 16
        engine.start()
        settle_burst(tickets, report, timeout=30.0)
        engine.stop()
        assert report.completed == 4
        assert report.shed_rate == pytest.approx(16 / 20)

    def test_queued_past_deadline_times_out_without_executing(self, system):
        engine = system.serving_engine()
        ticket = engine.submit(feeds_for(0), deadline_s=0.001)
        time.sleep(0.01)  # expire while no worker is running
        engine.start()
        with pytest.raises(DeadlineExceeded):
            ticket.result(timeout=30.0)
        engine.stop()
        assert ticket.state is TicketState.TIMED_OUT
        assert engine.registry.counter("mvtee_requests_timeout_total").total() == 1

    def test_detection_fails_the_batch(self, system):
        system.monitor.response_action = ResponseAction.HALT
        victim = system.monitor.stage_connections(1)[0]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        with system.serving_engine() as engine:
            ticket = engine.submit(feeds_for(1))
            with pytest.raises(MonitorError):
                ticket.result(timeout=30.0)
        assert ticket.state is TicketState.FAILED
        assert engine.registry.counter("mvtee_requests_failed_total").total() == 1

    def test_submit_after_stop_raises(self, system):
        engine = system.serving_engine().start()
        engine.stop()
        with pytest.raises(EngineStopped):
            engine.submit(feeds_for(0))

    def test_malformed_feeds_rejected_at_submit(self, system):
        with system.serving_engine() as engine:
            with pytest.raises(ValueError):
                engine.submit({"wrong": np.zeros((1,), dtype=np.float32)})
        assert engine.queue_depth == 0  # never occupied a slot

    def test_stop_drains_admitted_requests(self, system):
        engine = system.serving_engine()
        tickets = [engine.submit(feeds_for(i)) for i in range(3)]
        engine.start()
        engine.stop()  # close + drain + join
        assert all(t.state is TicketState.DONE for t in tickets)

    def test_all_serving_metrics_exposed(self, system):
        engine = system.serving_engine(policy=ServingPolicy(capacity=2))
        # Exercise every instrument: a served request, a shed burst, a timeout.
        expired = engine.submit(feeds_for(0), deadline_s=0.0)
        ok = engine.submit(feeds_for(1))
        with pytest.raises(Overloaded):
            engine.submit(feeds_for(2))
        engine.start()
        assert ok.result(timeout=30.0)
        with pytest.raises(DeadlineExceeded):
            expired.result(timeout=30.0)
        engine.stop()
        exposition = engine.render_prometheus()
        for name in SERVING_METRIC_NAMES:
            assert name in exposition, f"{name} missing from exposition"
        assert "mvtee_requests_served_total 1" in exposition
        assert "mvtee_requests_shed_total 1" in exposition
        assert "mvtee_requests_timeout_total 1" in exposition

    def test_concurrent_submitters(self, system):
        with system.serving_engine(
            policy=ServingPolicy(capacity=128, max_batch_size=8)
        ) as engine:
            tickets: list = []
            lock = threading.Lock()

            def client(seed):
                for i in range(5):
                    ticket = engine.submit(feeds_for(seed * 10 + i))
                    with lock:
                        tickets.append(ticket)

            threads = [threading.Thread(target=client, args=(t,)) for t in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for ticket in tickets:
                ticket.result(timeout=30.0)
        assert len(tickets) == 20
        assert all(t.state is TicketState.DONE for t in tickets)


class _ProxySystem:
    """Duck-typed system wrapper: a real deployment behind a hook."""

    def __init__(self, system):
        self._system = system
        self.monitor = system.monitor

    def infer_batches(self, batches, options=None):
        return self._system.infer_batches(batches, options)


class _GatedSystem(_ProxySystem):
    """Rendezvous inside infer_batches: proves batches truly overlap."""

    def __init__(self, system, parties):
        super().__init__(system)
        self.barrier = threading.Barrier(parties)
        self.engine = None
        self.inflight_seen: list[float] = []
        self._lock = threading.Lock()

    def infer_batches(self, batches, options=None):
        # Blocks until `parties` batches are simultaneously in flight;
        # with fewer engine workers than parties this times out and the
        # batch fails, so a passing test is proof of overlap.
        self.barrier.wait(timeout=10.0)
        if self.engine is not None:
            with self._lock:
                self.inflight_seen.append(
                    self.engine.registry.gauge("mvtee_inflight_batches").value()
                )
        return super().infer_batches(batches, options)


class _BlockingSystem(_ProxySystem):
    """Holds every batch until released (a wedged pipeline stand-in)."""

    def __init__(self, system):
        super().__init__(system)
        self.entered = threading.Event()
        self.release = threading.Event()

    def infer_batches(self, batches, options=None):
        self.entered.set()
        assert self.release.wait(timeout=30.0)
        return super().infer_batches(batches, options)


class _FlakyDispatcher(ParallelStageExecutor):
    """Raises an unexpected error on the first stage dispatch only."""

    def __init__(self):
        super().__init__(2)
        self._fired = False

    def dispatch(self, monitor, connections, batch_id, feeds, *, deadline=None):
        if not self._fired:
            self._fired = True
            raise RuntimeError("injected dispatcher fault")
        return super().dispatch(
            monitor, connections, batch_id, feeds, deadline=deadline
        )


class TestInflightOverlap:
    def test_num_workers_overlap_batches(self, system):
        gated = _GatedSystem(system, parties=2)
        engine = ServingEngine(
            gated, policy=ServingPolicy(max_batch_size=1, num_workers=2)
        )
        gated.engine = engine
        tickets = [engine.submit(feeds_for(i)) for i in range(2)]
        engine.start()
        for ticket in tickets:
            ticket.result(timeout=30.0)
        engine.stop()
        assert all(t.state is TicketState.DONE for t in tickets)
        # Both workers were inside infer_batches at the rendezvous.
        assert max(gated.inflight_seen) == 2

    def test_ordered_equivalence_across_worker_counts(self, system):
        inputs = [feeds_for(i) for i in range(12)]

        def serve(num_workers):
            policy = ServingPolicy(
                capacity=64, max_batch_size=2, num_workers=num_workers
            )
            with system.serving_engine(policy=policy) as engine:
                tickets = [engine.submit(dict(feeds)) for feeds in inputs]
                return [t.result(timeout=60.0) for t in tickets]

        serial = serve(1)
        overlapped = serve(4)
        assert len(serial) == len(overlapped) == len(inputs)
        for reference, result in zip(serial, overlapped):
            assert set(reference) == set(result)
            for name in reference:
                # Bit-identical per ticket, not merely close: overlap
                # must not change what any caller receives.
                assert np.array_equal(reference[name], result[name])

    def test_inflight_metrics_preregistered(self, system):
        engine = system.serving_engine()
        exposition = engine.render_prometheus()
        assert "mvtee_inflight_batches" in exposition
        assert "mvtee_batch_queue_stall_seconds" in exposition


class TestWorkerFaultContainment:
    def test_unexpected_error_fails_batch_but_worker_survives(self, system):
        recorder = FlightRecorder()
        engine = system.serving_engine(
            policy=ServingPolicy(max_batch_size=8, num_workers=1),
            sinks=Sinks(recorder=recorder),
        )
        engine._executor = _FlakyDispatcher()
        with engine:
            doomed = engine.submit(feeds_for(0))
            with pytest.raises(RuntimeError, match="injected dispatcher fault"):
                doomed.result(timeout=30.0)
            assert doomed.state is TicketState.FAILED
            # The worker thread survived the unexpected error and the
            # very next batch serves normally.
            healthy = engine.submit(feeds_for(1))
            assert healthy.result(timeout=30.0)
        assert healthy.state is TicketState.DONE
        assert engine.registry.counter("mvtee_requests_failed_total").total() == 1
        events = recorder.events(KIND_ENGINE_ERROR)
        assert len(events) == 1
        assert events[0].data["error"] == "RuntimeError"

    def test_deadline_applies_to_single_variant_stage(self, system):
        # Partition 0 is single-variant: before routing the fast path
        # through the dispatcher its stage ignored the batch deadline.
        for connection in system.monitor.stage_connections(0):
            connection.host.simulated_latency = 0.2
            connection.host.realtime_latency = True
        with system.serving_engine() as engine:
            ticket = engine.submit(feeds_for(0), deadline_s=0.05)
            with pytest.raises(DeadlineExceeded):
                ticket.result(timeout=30.0)
        assert ticket.state is TicketState.TIMED_OUT


class TestStopLifecycle:
    def test_stop_without_start_fails_queued_tickets(self, system):
        engine = system.serving_engine()
        tickets = [engine.submit(feeds_for(i)) for i in range(3)]
        engine.stop()
        for ticket in tickets:
            with pytest.raises(EngineStopped):
                ticket.result(timeout=1.0)
        assert all(t.state is TicketState.FAILED for t in tickets)
        assert engine.registry.counter("mvtee_requests_failed_total").total() == 3

    def test_stop_join_timeout_keeps_worker_handle(self, system):
        blocking = _BlockingSystem(system)
        engine = ServingEngine(
            blocking, policy=ServingPolicy(max_batch_size=8, num_workers=1)
        )
        ticket = engine.submit(feeds_for(0))
        engine.start()
        assert blocking.entered.wait(timeout=10.0)
        engine.stop(timeout=0.05)  # worker is wedged inside the batch
        assert engine._workers, "wedged worker handle must be kept for re-join"
        blocking.release.set()
        assert ticket.result(timeout=30.0)
        engine.stop(timeout=10.0)
        assert not engine._workers
        assert ticket.state is TicketState.DONE


class _StubHost:
    def __init__(self, crashed=False):
        self.crashed = crashed


class _StubConnection:
    def __init__(self, variant_id, partition_index=1, crashed=False):
        self.variant_id = variant_id
        self.partition_index = partition_index
        self.host = _StubHost(crashed)


class _StubMonitor:
    """Duck-typed monitor: scripted per-variant outcomes, thread-safe log."""

    def __init__(self, scripts: dict[str, list], delay_s: float = 0.0):
        # scripts: variant_id -> list of outputs-or-None popped per call.
        self.scripts = scripts
        self.delay_s = delay_s
        self.metrics_registry = MetricsRegistry()
        self.calls: list[str] = []
        self._lock = threading.Lock()

    def request_inference(self, connection, batch_id, feeds):
        with self._lock:
            self.calls.append(connection.variant_id)
            outcome = self.scripts[connection.variant_id].pop(0)
        if self.delay_s:
            time.sleep(self.delay_s)
        if outcome is None:
            return VariantOutput(
                variant_id=connection.variant_id, outputs=None, error="transient glitch"
            )
        return VariantOutput(variant_id=connection.variant_id, outputs=outcome)


class TestParallelStageExecutor:
    def test_results_keep_connection_order(self):
        outputs = {v: {"t": np.full((1,), i, dtype=np.float32)} for i, v in enumerate("abc")}
        monitor = _StubMonitor({v: [outputs[v]] for v in "abc"})
        connections = [_StubConnection(v) for v in "abc"]
        with ParallelStageExecutor(4) as executor:
            results = executor.dispatch(monitor, connections, 0, {})
        assert [r.variant_id for r in results] == ["a", "b", "c"]

    def test_transient_fault_retried_once(self):
        good = {"t": np.ones((1,), dtype=np.float32)}
        monitor = _StubMonitor({"a": [good], "b": [None, good]})
        connections = [_StubConnection("a"), _StubConnection("b")]
        with ParallelStageExecutor(4) as executor:
            results = executor.dispatch(monitor, connections, 0, {})
        assert all(r.outputs is not None for r in results)
        assert monitor.calls.count("b") == 2  # failed once, retried once
        retries = monitor.metrics_registry.counter("mvtee_dispatch_retries_total")
        assert retries.total() == 1

    def test_crashed_host_not_retried(self):
        good = {"t": np.ones((1,), dtype=np.float32)}
        monitor = _StubMonitor({"a": [good], "b": [None]})
        connections = [_StubConnection("a"), _StubConnection("b", crashed=True)]
        with ParallelStageExecutor(4) as executor:
            results = executor.dispatch(monitor, connections, 0, {})
        assert results[1].outputs is None
        assert monitor.calls.count("b") == 1

    def test_deadline_enforced(self):
        good = {"t": np.ones((1,), dtype=np.float32)}
        monitor = _StubMonitor({"a": [good], "b": [good]}, delay_s=0.2)
        connections = [_StubConnection("a"), _StubConnection("b")]
        with ParallelStageExecutor(4) as executor:
            with pytest.raises(DeadlineExceeded):
                executor.dispatch(
                    monitor,
                    connections,
                    0,
                    {},
                    deadline=time.monotonic() + 0.02,
                )

    def test_single_connection_stays_serial(self):
        good = {"t": np.ones((1,), dtype=np.float32)}
        monitor = _StubMonitor({"a": [good]})
        with ParallelStageExecutor(4) as executor:
            results = executor.dispatch(monitor, [_StubConnection("a")], 0, {})
        assert results[0].outputs is not None

    def test_single_connection_deadline_enforced(self):
        # Regression: the 1-connection fast path used to bypass the
        # deadline entirely and run the slow variant to completion.
        good = {"t": np.ones((1,), dtype=np.float32)}
        monitor = _StubMonitor({"a": [good]}, delay_s=0.2)
        with ParallelStageExecutor(2) as executor:
            with pytest.raises(DeadlineExceeded):
                executor.dispatch(
                    monitor,
                    [_StubConnection("a")],
                    0,
                    {},
                    deadline=time.monotonic() + 0.02,
                )

    def test_bound_dispatcher_carries_deadline_without_shared_state(self):
        good = {"t": np.ones((1,), dtype=np.float32)}
        monitor = _StubMonitor({"a": [good], "b": [good]}, delay_s=0.2)
        connections = [_StubConnection("a"), _StubConnection("b")]
        with ParallelStageExecutor(4) as executor:
            bound = executor.bind(time.monotonic() + 0.02)
            with pytest.raises(DeadlineExceeded):
                bound.dispatch(monitor, connections, 0, {})
            assert not hasattr(executor, "deadline")  # no shared deadline state

    def test_dispatcher_threads_run_concurrently(self, system):
        # Three replicas sleeping 30ms each: serial floor is 90ms, the
        # parallel wall clock must land well under it.
        for connection in system.monitor.stage_connections(1):
            connection.host.simulated_latency = 0.03
            connection.host.realtime_latency = True
        with ParallelStageExecutor(4) as executor:
            options = InferenceOptions(dispatcher=executor)
            start = time.monotonic()
            system.infer_batches([feeds_for(0)], options)
            parallel_wall = time.monotonic() - start
        start = time.monotonic()
        system.infer_batches([feeds_for(0)])
        serial_wall = time.monotonic() - start
        assert serial_wall > 0.09
        assert parallel_wall < serial_wall


class TestServingPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0},
            {"capacity": -1},
            {"max_batch_size": 0},
            {"max_wait_s": -0.001},
            {"max_workers": 0},
            {"num_workers": 0},
        ],
    )
    def test_rejects_out_of_range_fields(self, kwargs):
        (field,) = kwargs
        with pytest.raises(ValueError, match=field):
            ServingPolicy(**kwargs)

    def test_boundary_values_accepted(self):
        policy = ServingPolicy(
            capacity=1, max_batch_size=1, max_wait_s=0.0, max_workers=1,
            num_workers=1,
        )
        assert policy.capacity == 1


class TestResizeAndQuiesce:
    def test_resize_up_spawns_workers_and_updates_gauge(self, system):
        engine = system.serving_engine(
            policy=ServingPolicy(num_workers=1)
        ).start()
        try:
            assert engine.num_workers == 1
            engine.resize(3)
            assert engine.num_workers == 3
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                alive = sum(w.is_alive() for w in engine._workers.values())
                if alive == 3:
                    break
                time.sleep(0.01)
            assert sum(w.is_alive() for w in engine._workers.values()) == 3
            assert engine.registry.gauge("mvtee_engine_workers").value() == 3
            assert engine.submit(feeds_for(0)).result(timeout=30.0)
        finally:
            engine.stop()

    def test_resize_down_retires_extra_workers(self, system):
        engine = system.serving_engine(
            policy=ServingPolicy(num_workers=3)
        ).start()
        try:
            engine.resize(1)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                alive = sum(w.is_alive() for w in engine._workers.values())
                if alive == 1:
                    break
                time.sleep(0.01)
            assert sum(w.is_alive() for w in engine._workers.values()) == 1
            # The surviving worker still serves.
            assert engine.submit(feeds_for(1)).result(timeout=30.0)
        finally:
            engine.stop()

    def test_resize_validates_and_refuses_after_stop(self, system):
        engine = system.serving_engine()
        with pytest.raises(ValueError, match="num_workers"):
            engine.resize(0)
        engine.stop()
        with pytest.raises(EngineStopped):
            engine.resize(2)

    def test_quiesce_drains_inflight_and_holds_admission_open(self, system):
        engine = system.serving_engine(
            policy=ServingPolicy(max_batch_size=1, num_workers=2)
        ).start()
        try:
            before = engine.submit(feeds_for(0))
            assert before.result(timeout=30.0)
            with engine.quiesce(timeout=30.0):
                # Nothing is in flight; submissions queue but do not run.
                queued = engine.submit(feeds_for(1))
                time.sleep(0.15)
                assert not queued.done()
                assert engine.queue_depth >= 1
            # Released: the queued request now executes normally.
            assert queued.result(timeout=30.0)
            assert queued.state is TicketState.DONE
        finally:
            engine.stop()

    def test_quiesce_times_out_when_batch_is_wedged(self, system):
        blocking = _BlockingSystem(system)
        engine = ServingEngine(
            blocking, policy=ServingPolicy(max_batch_size=8, num_workers=1)
        )
        ticket = engine.submit(feeds_for(0))
        engine.start()
        try:
            assert blocking.entered.wait(timeout=10.0)
            with pytest.raises(TimeoutError, match="quiesce"):
                with engine.quiesce(timeout=0.1):
                    pass
            blocking.release.set()
            assert ticket.result(timeout=30.0)
            # The failed quiesce left the engine unpaused.
            assert engine.submit(feeds_for(1)).result(timeout=30.0)
        finally:
            engine.stop()

    def test_stop_wakes_a_paused_engine_and_drains(self, system):
        engine = system.serving_engine(
            policy=ServingPolicy(num_workers=2)
        ).start()
        with engine.quiesce(timeout=10.0):
            pending = engine.submit(feeds_for(0))
            # Stop overrides the pause: workers wake, drain the admitted
            # request, and exit -- nothing deadlocks, nothing is lost.
            engine.stop(timeout=10.0)
        assert not engine._workers
        assert pending.state is TicketState.DONE
