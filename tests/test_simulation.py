"""The performance simulator: structural properties of the cost model.

These assert the *relationships* the paper's figures rest on (pipelined
beats sequential, slow path costs more than fast, async beats sync with
a laggard, ...); the benchmarks regenerate the figures themselves.
"""

import pytest

from repro.mvx.config import MvxConfig
from repro.simulation import CostModel, StagePlan, VariantSim, simulate
from repro.simulation.scenarios import (
    baseline_result,
    cached_model,
    cached_partition,
    plan_from_partition_set,
)

COST = CostModel()


def chain(n_stages: int, *, flops=1e9, out_bytes=400_000, variants=1, slow=False,
          factors=None) -> list[StagePlan]:
    stages = []
    for i in range(n_stages):
        fs = factors or [1.0] * variants
        stages.append(
            StagePlan(
                index=i,
                flops=flops,
                output_bytes=out_bytes,
                variants=[VariantSim(f"p{i}v{j}", runtime_factor=f) for j, f in enumerate(fs)],
                slow_path=slow,
            )
        )
    return stages


class TestBasicProperties:
    def test_pipelined_throughput_exceeds_sequential(self):
        stages = chain(5)
        seq = simulate(stages, COST, pipelined=False)
        pipe = simulate(stages, COST, pipelined=True)
        assert pipe.throughput > 1.5 * seq.throughput

    def test_pipelined_latency_below_sequential(self):
        stages = chain(5)
        seq = simulate(stages, COST, pipelined=False)
        pipe = simulate(stages, COST, pipelined=True)
        assert pipe.avg_latency < seq.avg_latency

    def test_more_partitions_more_sequential_overhead(self):
        seq2 = simulate(chain(2), COST, pipelined=False, num_batches=8)
        seq8 = simulate(chain(8, flops=0.25e9), COST, pipelined=False, num_batches=8)
        # Same total compute, more checkpoints -> lower throughput.
        assert seq8.throughput < seq2.throughput

    def test_encryption_costs(self):
        stages = chain(5)
        enc = simulate(stages, COST, pipelined=False, encrypted=True)
        plain = simulate(stages, COST, pipelined=False, encrypted=False)
        assert enc.throughput < plain.throughput

    def test_slow_path_costs_more_than_fast(self):
        fast = simulate(chain(5, slow=False), COST, pipelined=False)
        slow = simulate(chain(5, slow=True), COST, pipelined=False)
        assert slow.throughput < fast.throughput

    def test_more_variants_cost_more_in_pipeline(self):
        one = simulate(chain(5, variants=1, slow=True), COST, pipelined=True)
        three = simulate(chain(5, variants=3, slow=True), COST, pipelined=True)
        assert three.throughput < one.throughput

    def test_throughput_latency_consistency(self):
        result = simulate(chain(3), COST, num_batches=16)
        assert result.makespan == max(result.batch_completions)
        assert result.throughput == pytest.approx(16 / result.makespan)

    def test_deterministic(self):
        a = simulate(chain(4), COST)
        b = simulate(chain(4), COST)
        assert a.batch_completions == b.batch_completions


class TestAsyncMode:
    def test_async_beats_sync_with_laggard(self):
        stages = chain(5, variants=3, slow=True, factors=[1.0, 1.0, 0.4])
        sync = simulate(stages, COST, pipelined=False, execution_mode="sync")
        asy = simulate(stages, COST, pipelined=False, execution_mode="async")
        assert asy.throughput > sync.throughput
        assert asy.avg_latency < sync.avg_latency

    def test_async_equals_sync_without_laggard_within_noise(self):
        stages = chain(5, variants=3, slow=True)
        sync = simulate(stages, COST, pipelined=False, execution_mode="sync")
        asy = simulate(stages, COST, pipelined=False, execution_mode="async")
        assert asy.throughput == pytest.approx(sync.throughput, rel=0.1)

    def test_async_needs_three_variants(self):
        stages = chain(5, variants=2, slow=True, factors=[1.0, 0.4])
        sync = simulate(stages, COST, pipelined=False, execution_mode="sync")
        asy = simulate(stages, COST, pipelined=False, execution_mode="async")
        assert asy.throughput == pytest.approx(sync.throughput, rel=1e-6)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            simulate(chain(2), COST, execution_mode="warp")


class TestSelectiveScaling:
    def test_selective_cheaper_than_full(self):
        selective = [
            StagePlan(i, 1e9, 400_000,
                      [VariantSim(f"v{i}{j}") for j in range(3 if i == 2 else 1)],
                      slow_path=(i == 2))
            for i in range(5)
        ]
        full = chain(5, variants=3, slow=True)
        sel = simulate(selective, COST, pipelined=False)
        ful = simulate(full, COST, pipelined=False)
        assert sel.throughput > ful.throughput

    def test_contention_model(self):
        light = CostModel(mvx_compute_contention=0.0)
        heavy = CostModel(mvx_compute_contention=0.5)
        stages = chain(3, variants=3, slow=True)
        assert (
            simulate(stages, heavy, pipelined=False).throughput
            < simulate(stages, light, pipelined=False).throughput
        )


class TestScenarioBridge:
    def test_plan_matches_config(self):
        ps = cached_partition("mobilenet-v3", 5)
        config = MvxConfig.selective(5, {2: 3})
        plan = plan_from_partition_set(ps, config)
        assert len(plan) == 5
        assert len(plan[2].variants) == 3
        assert plan[2].slow_path and not plan[0].slow_path

    def test_variant_factor_override(self):
        ps = cached_partition("mobilenet-v3", 5)
        config = MvxConfig.selective(5, {2: 3})
        plan = plan_from_partition_set(ps, config, variant_factors={2: [1.0, 1.1, 0.4]})
        assert plan[2].variants[2].runtime_factor == 0.4

    def test_factor_count_mismatch_rejected(self):
        ps = cached_partition("mobilenet-v3", 5)
        config = MvxConfig.selective(5, {2: 3})
        with pytest.raises(ValueError, match="factors"):
            plan_from_partition_set(ps, config, variant_factors={2: [1.0]})

    def test_baseline_reasonable(self):
        model = cached_model("mobilenet-v3")
        base = baseline_result(model, COST)
        # ~0.46 GFLOPs at 60 GFLOP/s -> several ms per batch.
        assert 0.001 < 1 / base.throughput < 0.1

    def test_resource_lanes(self):
        from repro.simulation.pipeline import _Resource

        r = _Resource(workers=2)
        assert r.acquire(0.0, 1.0) == 1.0
        assert r.acquire(0.0, 1.0) == 1.0  # second lane
        assert r.acquire(0.0, 1.0) == 2.0  # queues behind lane 1
