"""The automatic MVX plan search."""

import pytest

from repro.simulation import CostModel, search_plans
from repro.simulation.scenarios import cached_partition

COST = CostModel()


@pytest.fixture(scope="module")
def partition_set():
    return cached_partition("mobilenet-v3", 5)


@pytest.fixture(scope="module")
def result(partition_set):
    return search_plans(
        partition_set,
        COST,
        required_mvx={4},
        min_throughput_ratio=1.0,
        panel_sizes=(3,),
        max_mvx_partitions=3,
    )


class TestSearch:
    def test_candidates_enumerated(self, result):
        # subsets of size 1..3 containing partition 4 (plus none rejected
        # by required), sync+async each.
        assert len(result.candidates) > 10

    def test_best_meets_constraints(self, result):
        best = result.best
        assert best is not None
        assert 4 in best.config.mvx_partition_indices()
        assert best.throughput_ratio >= 1.0

    def test_pareto_frontier_is_nondominated(self, result):
        for plan in result.pareto:
            assert not any(
                other.dominates(plan) for other in result.candidates
            )

    def test_pareto_contains_extremes(self, result):
        securities = [c.security_score for c in result.candidates]
        frontier_securities = [c.security_score for c in result.pareto]
        assert max(securities) == max(frontier_securities)
        tputs = [c.throughput_ratio for c in result.candidates]
        assert max(tputs) == pytest.approx(max(c.throughput_ratio for c in result.pareto))

    def test_security_score_monotone_in_coverage(self, partition_set):
        from repro.mvx.config import MvxConfig
        from repro.partition.balance import partition_costs
        from repro.simulation.planner import _security_score

        costs = partition_costs(partition_set)
        one = _security_score(MvxConfig.selective(5, {2: 3}), costs)
        three = _security_score(MvxConfig.selective(5, {2: 3, 3: 3, 4: 3}), costs)
        full = _security_score(MvxConfig.uniform(5, 3), costs)
        assert 0 < one < three < full <= 1.0

    def test_bigger_panels_score_higher(self, partition_set):
        from repro.mvx.config import MvxConfig
        from repro.partition.balance import partition_costs
        from repro.simulation.planner import _security_score

        costs = partition_costs(partition_set)
        small = _security_score(MvxConfig.selective(5, {2: 3}), costs)
        large = _security_score(MvxConfig.selective(5, {2: 5}), costs)
        assert large > small

    def test_impossible_constraints_yield_none(self, partition_set):
        result = search_plans(
            partition_set,
            COST,
            required_mvx={0, 1, 2, 3, 4},
            min_throughput_ratio=10.0,  # unreachable
            panel_sizes=(3,),
        )
        assert result.best is None
        assert result.candidates  # still enumerated

    def test_bad_required_partition_rejected(self, partition_set):
        with pytest.raises(ValueError, match="outside partitions"):
            search_plans(partition_set, COST, required_mvx={99})

    def test_describe_readable(self, result):
        text = result.best.describe()
        assert "security=" in text and "tput=" in text
