"""The Sinks bundle and the one-cycle deprecation of the kwarg trio."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.mvx import InferenceOptions, MvteeSystem
from repro.observability import (
    FlightRecorder,
    MetricsRegistry,
    Sinks,
    Tracer,
)
from repro.observability.sinks import coerce_sinks
from repro.serving import ServingEngine


@pytest.fixture()
def system(small_resnet):
    return MvteeSystem.deploy(
        small_resnet,
        num_partitions=3,
        mvx_partitions={1: 2},
        seed=0,
        verify_partitions=False,
        verify_variants=False,
    )


def _feeds(seed: int = 0):
    return {
        "input": np.random.default_rng(seed)
        .normal(size=(1, 3, 16, 16))
        .astype(np.float32)
    }


class TestSinksBundle:
    def test_merged_over_fills_only_missing_fields(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        recorder = FlightRecorder()
        partial = Sinks(tracer=tracer)
        base = Sinks(tracer=Tracer(), metrics=metrics, recorder=recorder)
        merged = partial.merged_over(base)
        assert merged.tracer is tracer  # own field wins
        assert merged.metrics is metrics
        assert merged.recorder is recorder

    def test_with_metrics_replaces_only_metrics(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        bundle = Sinks(tracer=tracer).with_metrics(metrics)
        assert bundle.tracer is tracer
        assert bundle.metrics is metrics

    def test_coerce_rejects_mixing_bundle_and_legacy(self):
        with pytest.raises(ValueError, match="not both"):
            coerce_sinks(Sinks(), owner="test", metrics=MetricsRegistry())

    def test_coerce_warns_exactly_once_for_any_legacy_mix(self):
        with pytest.warns(DeprecationWarning) as record:
            coerce_sinks(
                None,
                owner="test",
                tracer=Tracer(),
                metrics=MetricsRegistry(),
                recorder=FlightRecorder(),
            )
        assert len(record) == 1
        assert "test" in str(record[0].message)


class TestBackCompatSpellings:
    """Old kwarg spellings keep working for one deprecation cycle."""

    def test_deploy_legacy_kwargs_warn_once_and_work(self, small_resnet):
        registry = MetricsRegistry()
        recorder = FlightRecorder()
        with pytest.warns(DeprecationWarning) as record:
            system = MvteeSystem.deploy(
                small_resnet,
                num_partitions=3,
                mvx_partitions={1: 2},
                seed=0,
                verify_partitions=False,
                verify_variants=False,
                metrics=registry,
                recorder=recorder,
            )
        assert len(record) == 1
        assert system.monitor.metrics is registry
        assert system.monitor.recorder is recorder

    def test_deploy_sinks_spelling_is_warning_free(self, small_resnet):
        registry = MetricsRegistry()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            system = MvteeSystem.deploy(
                small_resnet,
                num_partitions=3,
                mvx_partitions={1: 2},
                seed=0,
                verify_partitions=False,
                verify_variants=False,
                sinks=Sinks(metrics=registry),
            )
        assert system.monitor.metrics is registry

    def test_inference_options_legacy_kwargs_warn_once_and_work(self, system):
        registry = MetricsRegistry()
        with pytest.warns(DeprecationWarning) as record:
            options = InferenceOptions(metrics=registry, tracer=Tracer())
        assert len(record) == 1
        system.infer_batches([_feeds()], options)
        assert registry.counter("mvtee_checkpoints_total").total() >= 1

    def test_inference_options_sinks_normalizes_trio_fields(self, system):
        registry, tracer = MetricsRegistry(), Tracer()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            options = InferenceOptions(
                sinks=Sinks(tracer=tracer, metrics=registry)
            )
        # The bundle is the API; the trio stays readable for internals.
        assert options.metrics is registry
        assert options.tracer is tracer
        system.infer_batches([_feeds()], options)
        assert registry.counter("mvtee_checkpoints_total").total() >= 1

    def test_serving_engine_legacy_registry_kwarg_warns_once(self, system):
        registry = MetricsRegistry()
        with pytest.warns(DeprecationWarning) as record:
            engine = ServingEngine(system, registry=registry)
        assert len(record) == 1
        assert engine.registry is registry

    def test_system_serving_engine_sinks_spelling(self, system):
        registry = MetricsRegistry()
        recorder = FlightRecorder()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = system.serving_engine(
                sinks=Sinks(metrics=registry, recorder=recorder)
            )
        assert engine.registry is registry
        assert engine.recorder is recorder
        with engine:
            assert engine.submit(_feeds()).result(timeout=30.0)

    def test_system_serving_engine_legacy_kwargs_warn_once(self, system):
        registry = MetricsRegistry()
        with pytest.warns(DeprecationWarning) as record:
            engine = system.serving_engine(
                registry=registry, recorder=FlightRecorder()
            )
        assert len(record) == 1
        assert engine.registry is registry

    def test_legacy_and_sinks_equivalent_outputs(self, system):
        feeds = _feeds(3)
        with pytest.warns(DeprecationWarning):
            legacy_opts = InferenceOptions(metrics=MetricsRegistry())
        legacy = system.infer_batches([feeds], legacy_opts)[0]
        modern = system.infer_batches(
            [feeds], InferenceOptions(sinks=Sinks(metrics=MetricsRegistry()))
        )[0]
        (name,) = modern
        np.testing.assert_array_equal(legacy[name], modern[name])
