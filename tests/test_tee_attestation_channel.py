"""Attestation (quotes, verification) and RA-TLS channels."""

import hashlib

import pytest

from repro.tee import (
    AttestationError,
    ChannelError,
    Enclave,
    Manifest,
    Quote,
    SimulatedCpu,
    TeeType,
    Verifier,
    establish_channel,
)
from repro.tee.attestation import fresh_nonce, make_quote
from repro.tee.channel import DhKeyPair

CODE = b"some enclave code"


@pytest.fixture()
def cpu():
    return SimulatedCpu("plat")


@pytest.fixture()
def enclave(cpu):
    manifest = Manifest(
        entrypoint="/code",
        trusted_files={"/code": hashlib.sha256(CODE).hexdigest()},
    )
    return Enclave.launch(cpu, TeeType.SGX2, manifest, {"/code": CODE})


@pytest.fixture()
def verifier(cpu, enclave):
    v = Verifier()
    v.register_platform(cpu)
    v.trust_measurement(enclave.measurement)
    return v


class TestAttestation:
    def test_quote_verifies(self, enclave, verifier):
        quote = make_quote(enclave, b"challenge")
        report = verifier.verify(quote, expected_report_data=b"challenge")
        assert report.enclave_id == enclave.enclave_id

    def test_unknown_platform_rejected(self, enclave):
        quote = make_quote(enclave, b"x")
        with pytest.raises(AttestationError, match="unknown platform"):
            Verifier().verify(quote)

    def test_forged_signature_rejected(self, enclave, verifier):
        quote = make_quote(enclave, b"x")
        forged = Quote(report=quote.report, signature=bytes(32))
        with pytest.raises(AttestationError, match="signature"):
            verifier.verify(forged)

    def test_untrusted_measurement_rejected(self, cpu, verifier):
        other = Enclave.launch(
            cpu,
            TeeType.SGX2,
            Manifest(entrypoint="/other", trusted_files={"/other": hashlib.sha256(b"evil").hexdigest()}),
            {"/other": b"evil"},
        )
        quote = make_quote(other, b"x")
        with pytest.raises(AttestationError, match="not trusted"):
            verifier.verify(quote)

    def test_report_data_binding(self, enclave, verifier):
        quote = make_quote(enclave, b"nonce-a")
        with pytest.raises(AttestationError, match="report data"):
            verifier.verify(quote, expected_report_data=b"nonce-b")

    def test_long_report_data_hashed(self, enclave, verifier):
        long = bytes(200)
        quote = make_quote(enclave, long)
        verifier.verify(quote, expected_report_data=long)

    def test_quote_wire_roundtrip(self, enclave, verifier):
        quote = make_quote(enclave, b"x")
        verifier.verify(Quote.from_bytes(quote.to_bytes()), expected_report_data=b"x")

    def test_terminated_enclave_cannot_quote(self, enclave):
        enclave.terminate()
        with pytest.raises(Exception):
            make_quote(enclave, b"x")

    def test_nonces_unique(self):
        assert fresh_nonce() != fresh_nonce()


class TestDh:
    def test_shared_secret_agrees(self):
        a, b = DhKeyPair.generate(), DhKeyPair.generate()
        assert a.shared_secret(b.public) == b.shared_secret(a.public)

    def test_small_subgroup_rejected(self):
        a = DhKeyPair.generate()
        with pytest.raises(ChannelError, match="out of range"):
            a.shared_secret(1)


class TestSecureChannel:
    def test_establish_and_exchange(self, enclave, verifier):
        mon, var = establish_channel(
            initiator_quote_fn=None,
            responder_quote_fn=lambda rd: make_quote(enclave, rd),
            verifier=verifier,
        )
        assert var.open(mon.protect(b"hello")) == b"hello"
        assert mon.open(var.protect(b"reply")) == b"reply"
        assert mon.peer_report.enclave_id == enclave.enclave_id

    def test_mutual_attestation(self, cpu, enclave, verifier):
        mon, var = establish_channel(
            initiator_quote_fn=lambda rd: make_quote(enclave, rd),
            responder_quote_fn=lambda rd: make_quote(enclave, rd),
            verifier=verifier,
        )
        assert var.peer_report is not None

    def test_untrusted_responder_fails_handshake(self, cpu, verifier):
        rogue = Enclave.launch(
            cpu,
            TeeType.SGX2,
            Manifest(entrypoint="/r", trusted_files={"/r": hashlib.sha256(b"r").hexdigest()}),
            {"/r": b"r"},
        )
        with pytest.raises(ChannelError, match="attestation failed"):
            establish_channel(
                initiator_quote_fn=None,
                responder_quote_fn=lambda rd: make_quote(rogue, rd),
                verifier=verifier,
            )

    def test_replay_detected(self, enclave, verifier):
        mon, var = establish_channel(
            initiator_quote_fn=None,
            responder_quote_fn=lambda rd: make_quote(enclave, rd),
            verifier=verifier,
        )
        record = mon.protect(b"once")
        var.open(record)
        with pytest.raises(ChannelError):
            var.open(record)

    def test_reorder_detected(self, enclave, verifier):
        mon, var = establish_channel(
            initiator_quote_fn=None,
            responder_quote_fn=lambda rd: make_quote(enclave, rd),
            verifier=verifier,
        )
        first = mon.protect(b"one")
        second = mon.protect(b"two")
        with pytest.raises(ChannelError):
            var.open(second)
        # ... but the in-order record still works afterwards.
        assert var.open(first) == b"one"

    def test_tamper_detected(self, enclave, verifier):
        mon, var = establish_channel(
            initiator_quote_fn=None,
            responder_quote_fn=lambda rd: make_quote(enclave, rd),
            verifier=verifier,
        )
        record = bytearray(mon.protect(b"payload"))
        record[0] ^= 0xFF
        with pytest.raises(ChannelError):
            var.open(bytes(record))

    def test_cross_direction_record_rejected(self, enclave, verifier):
        mon, var = establish_channel(
            initiator_quote_fn=None,
            responder_quote_fn=lambda rd: make_quote(enclave, rd),
            verifier=verifier,
        )
        record = mon.protect(b"to-variant")
        with pytest.raises(ChannelError):
            mon.open(record)  # reflected back at the sender

    def test_aad_binding(self, enclave, verifier):
        mon, var = establish_channel(
            initiator_quote_fn=None,
            responder_quote_fn=lambda rd: make_quote(enclave, rd),
            verifier=verifier,
        )
        record = mon.protect(b"x", aad=b"label-1")
        with pytest.raises(ChannelError):
            var.open(record, aad=b"label-2")

    def test_channels_have_independent_keys(self, enclave, verifier):
        mon1, var1 = establish_channel(
            initiator_quote_fn=None,
            responder_quote_fn=lambda rd: make_quote(enclave, rd),
            verifier=verifier,
        )
        mon2, var2 = establish_channel(
            initiator_quote_fn=None,
            responder_quote_fn=lambda rd: make_quote(enclave, rd),
            verifier=verifier,
        )
        record = mon1.protect(b"x")
        with pytest.raises(ChannelError):
            var2.open(record)
