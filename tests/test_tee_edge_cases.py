"""Edge cases across the TEE substrate and small helper modules."""

import hashlib

import pytest

from repro.mvx.events import CrashEvent, DivergenceEvent
from repro.mvx.wire import decode_message, encode_message
from repro.tee import Enclave, GramineError, Manifest, SimulatedCpu, TeeType
from repro.tee.hardware import TeeType as TT


class TestTeeTypeProperties:
    def test_sgx1_has_integrity_tree(self):
        assert TT.SGX1.memory_integrity_tree
        assert not TT.SGX2.memory_integrity_tree
        assert not TT.TDX.memory_integrity_tree

    def test_epc_ordering(self):
        assert TT.SGX1.epc_bytes < TT.SGX2.epc_bytes < TT.TDX.epc_bytes

    def test_dynamic_memory(self):
        assert not TT.SGX1.dynamic_memory
        assert TT.SGX2.dynamic_memory


class TestCpuAccounting:
    def test_release_never_negative(self):
        cpu = SimulatedCpu("p")
        cpu.reserve_epc(TeeType.SGX2, 100)
        cpu.release_epc(TeeType.SGX2, 500)
        assert cpu.epc_in_use(TeeType.SGX2) == 0

    def test_signing_stable(self):
        cpu = SimulatedCpu("p")
        assert cpu.sign_report(b"r") == cpu.sign_report(b"r")
        assert cpu.sign_report(b"r") != cpu.sign_report(b"s")

    def test_distinct_platforms_distinct_keys(self):
        assert SimulatedCpu("a").verification_key() != SimulatedCpu("b").verification_key()


class TestGramineEnv:
    @pytest.fixture()
    def enclave(self):
        code = b"app"
        manifest = Manifest(
            entrypoint="/app",
            trusted_files={"/app": hashlib.sha256(code).hexdigest()},
            allowed_files={"/tmp/log"},
            env_allowlist={"MODE"},
        )
        return Enclave.launch(
            SimulatedCpu("p"), TeeType.SGX2, manifest, {"/app": code, "/tmp/log": b"x"}
        )

    def test_allowed_file_passthrough(self, enclave):
        assert enclave.os.read_file("/tmp/log") == b"x"

    def test_allowed_file_missing(self, enclave):
        enclave.os.host_files.pop("/tmp/log")
        with pytest.raises(GramineError, match="missing"):
            enclave.os.read_file("/tmp/log")

    def test_env_accept_and_block(self, enclave):
        enclave.os.set_env("MODE", "prod")
        assert enclave.os.get_env("MODE") == "prod"
        with pytest.raises(GramineError, match="blocked"):
            enclave.os.set_env("LD_PRELOAD", "/evil.so")

    def test_wipe_clears_keys(self, enclave):
        enclave.os.install_key("k", bytes(32))
        enclave.os.wipe()
        assert not enclave.os.has_key("k")

    def test_double_terminate_idempotent(self, enclave):
        enclave.terminate()
        enclave.terminate()
        assert enclave.cpu.epc_in_use(TeeType.SGX2) == 0

    def test_exec_without_two_stage_keeps_manifest(self, enclave):
        before = enclave.os.manifest
        enclave.os.exec("/app")
        assert enclave.os.manifest == before
        assert enclave.os.stage == 2


class TestWireEdgeCases:
    def test_empty_meta(self):
        msg_type, meta, tensors = decode_message(encode_message("ping"))
        assert msg_type == "ping" and meta == {} and tensors == {}

    def test_meta_roundtrip_types(self):
        meta = {"i": 3, "f": 1.5, "s": "x", "b": True, "n": None, "l": [1, 2]}
        _, decoded, _ = decode_message(encode_message("m", meta))
        assert decoded == meta

    def test_multiple_tensors(self):
        import numpy as np

        tensors = {
            "a": np.zeros((2, 2), dtype=np.float32),
            "b": np.ones(5, dtype=np.int64),
        }
        _, _, decoded = decode_message(encode_message("m", {}, tensors))
        assert set(decoded) == {"a", "b"}
        assert decoded["b"].dtype == np.int64


class TestEventSummaries:
    def test_divergence_summary(self):
        event = DivergenceEvent(
            batch_id=3, partition_index=1,
            dissenting_variants=("bad",), agreeing_variants=("good-1", "good-2"),
        )
        text = event.summary()
        assert "batch 3" in text and "bad" in text and "checkpoint" in text

    def test_async_summary_labelled(self):
        event = DivergenceEvent(
            batch_id=0, partition_index=0,
            dissenting_variants=("v",), agreeing_variants=(), detected_async=True,
        )
        assert "async cross-validation" in event.summary()

    def test_crash_event_fields(self):
        event = CrashEvent(batch_id=1, partition_index=2, variant_id="v", error="boom")
        assert event.error == "boom"
