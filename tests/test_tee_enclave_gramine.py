"""Enclave lifecycle, measurements, and the two-stage Gramine TEE OS."""

import hashlib

import pytest

from repro.crypto.keys import KeyManager
from repro.crypto.sealed import seal_bytes
from repro.tee import Enclave, EnclaveError, GramineError, Manifest, SimulatedCpu, TeeType

INIT_CODE = b"init binary"
MAIN_CODE = b"main variant binary"


@pytest.fixture()
def cpu():
    return SimulatedCpu("test-platform")


@pytest.fixture()
def kdk_record():
    return KeyManager().create_key("var-x")


def two_stage_setup(kdk_record):
    stage2 = Manifest(
        entrypoint="/app/main.enc",
        encrypted_files={"/app/main.enc"},
        syscalls={"read", "write", "exit"},
    )
    host = {
        "/app/init": INIT_CODE,
        "/app/manifest2.enc": seal_bytes(
            kdk_record, "/app/manifest2.enc", stage2.to_bytes(), freshness=1
        ).to_bytes(),
        "/app/main.enc": seal_bytes(
            kdk_record, "/app/main.enc", MAIN_CODE, freshness=1
        ).to_bytes(),
    }
    init_manifest = Manifest(
        entrypoint="/app/init",
        trusted_files={"/app/init": hashlib.sha256(INIT_CODE).hexdigest()},
        encrypted_files={"/app/manifest2.enc"},
        two_stage=True,
    )
    return init_manifest, host, stage2


class TestEnclaveLifecycle:
    def test_launch_measures(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        assert len(enclave.measurement) == 64

    def test_measurement_covers_manifest(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        a = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        other = Manifest(
            entrypoint=manifest.entrypoint,
            trusted_files=manifest.trusted_files,
            encrypted_files=manifest.encrypted_files,
            two_stage=True,
            extra={"note": "different"},
        )
        b = Enclave.launch(cpu, TeeType.SGX2, other, host)
        assert a.measurement != b.measurement

    def test_tampered_trusted_file_blocks_launch(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        host["/app/init"] = b"evil binary"
        with pytest.raises(EnclaveError, match="hash mismatch"):
            Enclave.launch(cpu, TeeType.SGX2, manifest, host)

    def test_unsupported_tee_type(self, kdk_record):
        cpu = SimulatedCpu("sgx-only", tee_types=(TeeType.SGX1,))
        manifest, host, _ = two_stage_setup(kdk_record)
        with pytest.raises(EnclaveError, match="does not support"):
            Enclave.launch(cpu, TeeType.TDX, manifest, host)

    def test_epc_accounting(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host, epc_bytes=1 << 20)
        assert cpu.epc_in_use(TeeType.SGX2) == 1 << 20
        enclave.terminate()
        assert cpu.epc_in_use(TeeType.SGX2) == 0

    def test_epc_exhaustion(self, kdk_record):
        cpu = SimulatedCpu("small")
        manifest, host, _ = two_stage_setup(kdk_record)
        Enclave.launch(cpu, TeeType.SGX1, manifest, host, epc_bytes=100 << 20)
        with pytest.raises(MemoryError):
            Enclave.launch(cpu, TeeType.SGX1, manifest, host, epc_bytes=100 << 20)

    def test_terminated_enclave_rejects_operations(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        enclave.terminate()
        with pytest.raises(EnclaveError, match="terminated"):
            enclave.require_running()


class TestGramineFileAccess:
    def test_trusted_file_verified(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        assert enclave.os.read_file("/app/init") == INIT_CODE

    def test_trusted_file_mutation_detected_at_read(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        host["/app/init"] = b"swapped after launch"
        with pytest.raises(GramineError, match="integrity"):
            enclave.os.read_file("/app/init")

    def test_unlisted_file_denied(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        with pytest.raises(GramineError, match="not permitted"):
            enclave.os.read_file("/etc/passwd")

    def test_encrypted_file_requires_key(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        with pytest.raises(GramineError, match="no key"):
            enclave.os.read_file("/app/manifest2.enc")

    def test_encrypted_file_with_key(self, cpu, kdk_record):
        manifest, host, stage2 = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        enclave.os.install_key("var-x", kdk_record.key)
        assert enclave.os.read_file("/app/manifest2.enc") == stage2.to_bytes()


class TestTwoStageTransition:
    def _booted(self, cpu, kdk_record):
        manifest, host, stage2 = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        enclave.os.install_key("var-x", kdk_record.key)
        enclave.os.install_second_stage_manifest(
            enclave.os.read_file("/app/manifest2.enc")
        )
        return enclave, stage2

    def test_full_transition(self, cpu, kdk_record):
        enclave, stage2 = self._booted(cpu, kdk_record)
        enclave.os.exec("/app/main.enc")
        assert enclave.os.stage == 2
        assert enclave.os.manifest == stage2
        assert enclave.os.read_file("/app/main.enc") == MAIN_CODE

    def test_one_time_installation(self, cpu, kdk_record):
        enclave, stage2 = self._booted(cpu, kdk_record)
        with pytest.raises(GramineError, match="already installed"):
            enclave.os.install_second_stage_manifest(stage2.to_bytes())

    def test_exec_is_one_way(self, cpu, kdk_record):
        enclave, _ = self._booted(cpu, kdk_record)
        enclave.os.exec("/app/main.enc")
        with pytest.raises(GramineError, match="one-way"):
            enclave.os.exec("/app/main.enc")

    def test_exec_before_install_rejected(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        enclave.os.install_key("var-x", kdk_record.key)
        with pytest.raises(GramineError, match="before second-stage"):
            enclave.os.exec("/app/main.enc")

    def test_entrypoint_must_be_encrypted_file(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        bad_stage2 = Manifest(entrypoint="/app/plain", allowed_files={"/app/plain"})
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        enclave.os.install_key("var-x", kdk_record.key)
        enclave.os.install_second_stage_manifest(bad_stage2.to_bytes())
        with pytest.raises(GramineError, match="encrypted files"):
            enclave.os.exec("/app/plain")

    def test_key_manipulation_blocked_in_stage2(self, cpu, kdk_record):
        enclave, _ = self._booted(cpu, kdk_record)
        enclave.os.exec("/app/main.enc")
        with pytest.raises(GramineError, match="second stage"):
            enclave.os.install_key("other", bytes(32))

    def test_manifest_install_blocked_in_stage2(self, cpu, kdk_record):
        enclave, stage2 = self._booted(cpu, kdk_record)
        enclave.os.exec("/app/main.enc")
        with pytest.raises(GramineError, match="disabled in stage 2"):
            enclave.os.install_second_stage_manifest(stage2.to_bytes())

    def test_state_reset_on_exec(self, cpu, kdk_record):
        manifest, host, stage2 = two_stage_setup(kdk_record)
        init_manifest = Manifest(
            entrypoint=manifest.entrypoint,
            trusted_files=manifest.trusted_files,
            encrypted_files=manifest.encrypted_files,
            env_allowlist={"MVTEE_MONITOR_ADDR"},
            two_stage=True,
        )
        enclave = Enclave.launch(cpu, TeeType.SGX2, init_manifest, host)
        enclave.os.set_env("MVTEE_MONITOR_ADDR", "10.0.0.1")
        enclave.os.install_key("var-x", kdk_record.key)
        enclave.os.install_second_stage_manifest(
            enclave.os.read_file("/app/manifest2.enc")
        )
        enclave.os.exec("/app/main.enc")
        assert enclave.os.get_env("MVTEE_MONITOR_ADDR") is None

    def test_extension_register_tracks_events(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        initial = enclave.extension_register
        enclave.os.install_key("var-x", kdk_record.key)
        after_key = enclave.extension_register
        assert initial != after_key

    def test_second_stage_cannot_be_two_stage(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        nested = Manifest(entrypoint="/x", encrypted_files={"/x"}, two_stage=True)
        with pytest.raises(Exception, match="cannot itself"):
            enclave.os.install_second_stage_manifest(nested.to_bytes())


class TestSignalCrossVerification:
    def test_tracked_request_accepted(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        enclave.os.record_request("open", "/app/init")
        enclave.os.verify_host_signal("open", "/app/init")

    def test_injected_signal_rejected(self, cpu, kdk_record):
        manifest, host, _ = two_stage_setup(kdk_record)
        enclave = Enclave.launch(cpu, TeeType.SGX2, manifest, host)
        with pytest.raises(GramineError, match="signal injection"):
            enclave.os.verify_host_signal("open", "/never/requested")
