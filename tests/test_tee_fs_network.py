"""Protected filesystem rollback detection and the network fabric."""

import pytest

from repro.crypto.keys import KeyManager
from repro.crypto.sealed import SealError, seal_bytes
from repro.tee.filesystem import MonotonicCounterService, ProtectedFs, RollbackError
from repro.tee.network import Fabric, NetworkError


@pytest.fixture()
def record():
    return KeyManager().create_key("v")


@pytest.fixture()
def pfs(record):
    return ProtectedFs(kdk=record.key, key_id="v")


class TestProtectedFs:
    def test_write_read(self, pfs, record):
        pfs.write(seal_bytes(record, "f", b"v1", freshness=1))
        assert pfs.read("f") == b"v1"

    def test_update_advances(self, pfs, record):
        pfs.write(seal_bytes(record, "f", b"v1", freshness=1))
        pfs.write(seal_bytes(record, "f", b"v2", freshness=2))
        assert pfs.read("f") == b"v2"

    def test_stale_write_rejected(self, pfs, record):
        pfs.write(seal_bytes(record, "f", b"v2", freshness=2))
        with pytest.raises(RollbackError):
            pfs.write(seal_bytes(record, "f", b"v1", freshness=1))

    def test_host_rollback_detected(self, pfs, record):
        old = seal_bytes(record, "f", b"v1", freshness=1)
        pfs.write(old)
        pfs.write(seal_bytes(record, "f", b"v2", freshness=2))
        pfs.host_store["f"] = old.to_bytes()  # untrusted host reverts
        with pytest.raises(RollbackError, match="rolled back"):
            pfs.read("f")

    def test_path_confusion_detected(self, pfs, record):
        blob = seal_bytes(record, "a", b"x", freshness=1)
        pfs.host_store["b"] = blob.to_bytes()
        with pytest.raises(SealError, match="claims path"):
            pfs.read("b")

    def test_missing_file(self, pfs):
        with pytest.raises(SealError, match="no sealed file"):
            pfs.read("ghost")

    def test_monotonic_counter_survives_fs_state_loss(self, record):
        counters = MonotonicCounterService()
        fs1 = ProtectedFs(kdk=record.key, key_id="v", counters=counters)
        old = seal_bytes(record, "f", b"v1", freshness=1)
        fs1.write(old)
        fs1.write(seal_bytes(record, "f", b"v2", freshness=2))
        # TEE restarts: fresh FS state, same host store, same counter service.
        fs2 = ProtectedFs(
            kdk=record.key, key_id="v", counters=counters, host_store=fs1.host_store
        )
        fs2.host_store["f"] = old.to_bytes()
        with pytest.raises(RollbackError):
            fs2.read("f")

    def test_counter_service_strictness(self):
        counters = MonotonicCounterService()
        counters.advance("c", 1)
        with pytest.raises(RollbackError):
            counters.advance("c", 1)
        assert counters.latest("c") == 1
        assert counters.latest("unknown") == -1


class TestFabric:
    def test_send_recv_fifo(self):
        fabric = Fabric()
        fabric.register("a")
        fabric.register("b")
        fabric.send("a", "b", b"one")
        fabric.send("a", "b", b"two")
        assert fabric.recv("a", "b") == b"one"
        assert fabric.recv("a", "b") == b"two"

    def test_unknown_endpoint(self):
        fabric = Fabric()
        with pytest.raises(NetworkError, match="unknown endpoint"):
            fabric.send("a", "ghost", b"x")

    def test_empty_queue(self):
        fabric = Fabric()
        fabric.register("b")
        with pytest.raises(NetworkError, match="no message"):
            fabric.recv("a", "b")

    def test_adversary_tamper(self):
        fabric = Fabric(adversary=lambda s, d, m: m + b"!corrupted")
        fabric.register("b")
        fabric.send("a", "b", b"clean")
        assert fabric.recv("a", "b") == b"clean!corrupted"

    def test_adversary_drop(self):
        fabric = Fabric(adversary=lambda s, d, m: None)
        fabric.register("b")
        fabric.send("a", "b", b"lost")
        assert fabric.pending("a", "b") == 0

    def test_byte_accounting(self):
        fabric = Fabric()
        fabric.register("b")
        fabric.send("a", "b", bytes(10))
        fabric.send("a", "b", bytes(5))
        assert fabric.total_bytes() == 15
