"""Manifests: policy fields, serialization, hashing."""

import pytest

from repro.tee.manifest import DEFAULT_SYSCALLS, Manifest, ManifestError


def sample_manifest(**overrides) -> Manifest:
    kwargs = dict(
        entrypoint="/app/run",
        trusted_files={"/app/run": "ab" * 32},
        encrypted_files={"/app/model.enc"},
        allowed_files={"/tmp/scratch"},
        env_allowlist={"MVTEE_MONITOR_ADDR"},
        two_stage=True,
    )
    kwargs.update(overrides)
    return Manifest(**kwargs)


class TestManifestConstruction:
    def test_empty_entrypoint_rejected(self):
        with pytest.raises(ManifestError):
            Manifest(entrypoint="")

    def test_trusted_and_encrypted_overlap_rejected(self):
        with pytest.raises(ManifestError, match="both trusted and encrypted"):
            Manifest(
                entrypoint="/a",
                trusted_files={"/f": "00" * 32},
                encrypted_files={"/f"},
            )

    def test_default_syscalls(self):
        assert Manifest(entrypoint="/a").syscalls == DEFAULT_SYSCALLS


class TestManifestPolicy:
    def test_syscall_allowlist(self):
        m = sample_manifest(syscalls={"read", "exit"})
        assert m.allows_syscall("read")
        assert not m.allows_syscall("mmap")

    def test_env_allowlist(self):
        m = sample_manifest()
        assert m.allows_env("MVTEE_MONITOR_ADDR")
        assert not m.allows_env("LD_PRELOAD")


class TestManifestSerialization:
    def test_roundtrip(self):
        m = sample_manifest()
        restored = Manifest.from_bytes(m.to_bytes())
        assert restored == m

    def test_hash_stable(self):
        assert sample_manifest().hash() == sample_manifest().hash()

    def test_hash_sensitive_to_policy(self):
        a = sample_manifest()
        b = sample_manifest(syscalls={"read"})
        assert a.hash() != b.hash()

    def test_malformed_bytes_rejected(self):
        with pytest.raises(ManifestError, match="malformed"):
            Manifest.from_bytes(b"not json at all")
