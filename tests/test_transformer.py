"""Transformer support (§7.4 future work): ops, models, MVX deployment."""

import numpy as np
import pytest

from repro.graph.flops import graph_flops
from repro.graph.node import Node
from repro.mvx import MvteeSystem, ResponseAction
from repro.ops import KernelContext, evaluate_node, get_backend
from repro.partition import find_balanced_partition, verify_partition_set
from repro.runtime import RuntimeConfig, create_runtime
from repro.runtime.faults import FaultInjector
from repro.zoo import build_model


def run_op(op_type, inputs, attrs=None, n_outputs=1):
    node = Node(
        name="n",
        op_type=op_type,
        inputs=[f"i{k}" for k in range(len(inputs))],
        outputs=[f"o{k}" for k in range(n_outputs)],
        attrs=attrs or {},
    )
    return evaluate_node(node, inputs, KernelContext(blas=get_backend("mkl-sim")))


@pytest.fixture(scope="module")
def tiny_gpt():
    return build_model("tiny-gpt")


@pytest.fixture(scope="module")
def gpt_input():
    return np.random.default_rng(0).normal(size=(1, 8, 32)).astype(np.float32)


@pytest.fixture(scope="module")
def gpt_reference(tiny_gpt, gpt_input):
    runtime = create_runtime(RuntimeConfig(optimization_level=0))
    runtime.prepare(tiny_gpt)
    return runtime.run({"embeddings": gpt_input})


class TestTransformerKernels:
    def test_layer_norm_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        x = rng.normal(loc=5.0, scale=3.0, size=(2, 4, 16)).astype(np.float32)
        scale = np.ones(16, dtype=np.float32)
        shift = np.zeros(16, dtype=np.float32)
        out = run_op("LayerNormalization", [x, scale, shift])[0]
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_affine(self):
        x = np.zeros((1, 2, 4), dtype=np.float32)
        scale = np.full(4, 2.0, dtype=np.float32)
        shift = np.full(4, 7.0, dtype=np.float32)
        out = run_op("LayerNormalization", [x, scale, shift])[0]
        assert np.allclose(out, 7.0)

    def test_gelu_known_values(self):
        x = np.array([0.0, 1.0, -1.0], dtype=np.float32)
        out = run_op("Gelu", [x])[0]
        assert np.isclose(out[0], 0.0, atol=1e-6)
        assert np.isclose(out[1], 0.8412, atol=1e-3)
        assert np.isclose(out[2], -0.1588, atol=1e-3)

    def test_batch_matmul_matches_numpy(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(2, 3, 4, 5)).astype(np.float32)
        b = rng.normal(size=(2, 3, 5, 6)).astype(np.float32)
        out = run_op("BatchMatMul", [a, b])[0]
        assert np.allclose(out, a @ b, atol=1e-5)

    def test_batch_matmul_transb_scale(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=(1, 2, 4, 8)).astype(np.float32)
        k = rng.normal(size=(1, 2, 4, 8)).astype(np.float32)
        out = run_op("BatchMatMul", [q, k], {"transB": 1, "scale": 0.5})[0]
        assert np.allclose(out, 0.5 * (q @ np.swapaxes(k, -1, -2)), atol=1e-5)

    def test_split_equal_parts(self):
        x = np.arange(24, dtype=np.float32).reshape(2, 12)
        parts = run_op("Split", [x], {"axis": -1, "num_outputs": 3}, n_outputs=3)
        assert len(parts) == 3
        assert np.array_equal(np.concatenate(parts, axis=-1), x)

    def test_split_indivisible_rejected(self):
        from repro.ops import KernelError

        x = np.zeros((2, 7), dtype=np.float32)
        with pytest.raises(KernelError, match="not divisible"):
            run_op("Split", [x], {"axis": -1, "num_outputs": 3}, n_outputs=3)

    def test_causal_mask_structure(self):
        scores = np.zeros((1, 1, 4, 4), dtype=np.float32)
        out = run_op("CausalMask", [scores])[0]
        assert np.all(out[..., np.triu_indices(4, k=1)[0], np.triu_indices(4, k=1)[1]] <= -1e8)
        assert np.all(np.tril(out[0, 0]) == 0.0)


class TestTransformerModel:
    def test_builds_and_validates(self, tiny_gpt):
        tiny_gpt.validate()
        assert any(n.op_type == "BatchMatMul" for n in tiny_gpt.nodes)

    def test_output_is_distribution(self, gpt_reference):
        out = next(iter(gpt_reference.values()))
        assert out.shape == (1, 8, 50)
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-4)

    def test_causality(self, tiny_gpt, gpt_input, gpt_reference):
        """Perturbing the last token's embedding must not change earlier rows."""
        runtime = create_runtime(RuntimeConfig(optimization_level=0))
        runtime.prepare(tiny_gpt)
        perturbed = gpt_input.copy()
        perturbed[0, -1, 3] += 2.5  # single feature, survives LayerNorm
        out = next(iter(runtime.run({"embeddings": perturbed}).values()))
        ref = next(iter(gpt_reference.values()))
        assert np.allclose(out[0, :-1], ref[0, :-1], atol=1e-5)
        assert not np.allclose(out[0, -1], ref[0, -1], atol=1e-5)

    def test_engines_agree(self, tiny_gpt, gpt_input, gpt_reference):
        runtime = create_runtime(
            RuntimeConfig(engine="compiled", blas_backend="openblas-sim", executor="vm")
        )
        runtime.prepare(tiny_gpt)
        out = runtime.run({"embeddings": gpt_input})
        for name, expected in gpt_reference.items():
            assert np.allclose(out[name], expected, atol=1e-3)

    def test_gpt_small_sim_flops_scale(self):
        big = build_model("gpt-small-sim", n_layers=2)
        small = build_model("tiny-gpt")
        assert graph_flops(big) > 100 * graph_flops(small)


class TestTransformerPartitioning:
    def test_partition_and_verify(self, tiny_gpt):
        ps = find_balanced_partition(tiny_gpt, 4, restarts=4, seed=0)
        verify_partition_set(ps, rtol=1e-3, atol=1e-4)

    def test_mvx_deployment(self, tiny_gpt, gpt_input, gpt_reference):
        system = MvteeSystem.deploy(
            tiny_gpt,
            num_partitions=3,
            mvx_partitions={1: 3},
            seed=0,
            verify_partitions=False,
            verify_variants=False,
        )
        out = system.infer({"embeddings": gpt_input})
        for name, expected in gpt_reference.items():
            assert np.allclose(out[name], expected, atol=1e-2)

    def test_mvx_detects_transformer_fault(self, tiny_gpt, gpt_input):
        system = MvteeSystem.deploy(
            tiny_gpt,
            num_partitions=3,
            mvx_partitions={1: 3},
            seed=0,
            verify_partitions=False,
            verify_variants=False,
        )
        system.monitor.response_action = ResponseAction.DROP_VARIANT
        victim = system.monitor.stage_connections(1)[0]
        FaultInjector(victim.host.runtime).arm_backend_bitflip(bit=30)
        system.infer({"embeddings": gpt_input})
        assert system.monitor.divergence_events() or system.monitor.crash_events()
