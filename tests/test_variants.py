"""Variant generation: transforms, specs, pools, manifests."""

import json

import numpy as np
import pytest

from repro.crypto.keys import KeyManager
from repro.crypto.sealed import SealedBlob, unseal_bytes
from repro.graph import GraphBuilder
from repro.partition import ContractionSettings, random_contraction
from repro.runtime.base import RuntimeConfig
from repro.tee.hardware import TeeType
from repro.variants import (
    TransformError,
    VariantSpec,
    apply_transforms,
    available_transforms,
    build_pool,
    verify_equivalent,
)
from repro.variants.manifests import INIT_VARIANT_CODE, bootstrap_script, variant_manifests, variant_paths
from repro.variants.pool import diversified_specs


@pytest.fixture(scope="module")
def partitioned(small_resnet):
    return random_contraction(small_resnet, ContractionSettings(3, seed=1))


def bottleneck_model():
    """A model with a 1x1 stride-1 conv (conv1x1-to-gemm target)."""
    b = GraphBuilder("bottleneck", seed=0)
    x = b.input("input", (1, 4, 8, 8))
    y = b.relu(b.conv(x, 8, kernel=1, pad=0))
    y = b.conv(y, 4, kernel=3, pad=1)
    b.set_output(b.softmax(b.fc(b.global_avg_pool(y), 5)))
    return b.finish()


class TestTransformEquivalence:
    @pytest.mark.parametrize(
        "name",
        ["dummy-identity", "dummy-zero-add", "commute-add", "channel-shuffle",
         "channel-duplicate", "split-conv", "selective-optimize"],
    )
    def test_preserves_semantics_on_resnet(self, small_resnet, name):
        transformed = apply_transforms(small_resnet, [name], seed=11)
        verify_equivalent(small_resnet, transformed, trials=1)

    def test_conv1x1_to_gemm(self):
        model = bottleneck_model()
        transformed = apply_transforms(model, ["conv1x1-to-gemm"], seed=0)
        verify_equivalent(model, transformed, trials=2)
        assert any(n.op_type == "Gemm" and ".fc_gemm" in n.name for n in transformed.nodes)

    def test_transform_pipeline(self, small_resnet):
        transformed = apply_transforms(
            small_resnet,
            ["dummy-zero-add", "channel-shuffle", "commute-add", "split-conv"],
            seed=5,
        )
        verify_equivalent(small_resnet, transformed, trials=1)
        assert transformed.structural_hash() != small_resnet.structural_hash()

    def test_unknown_transform_rejected(self, small_resnet):
        with pytest.raises(TransformError, match="unknown transform"):
            apply_transforms(small_resnet, ["quantum-entangle"])

    def test_inapplicable_transform_raises(self, tiny_mlp):
        with pytest.raises(TransformError):
            apply_transforms(tiny_mlp, ["channel-shuffle"])

    def test_channel_shuffle_actually_permutes(self, small_resnet):
        transformed = apply_transforms(small_resnet, ["channel-shuffle"], seed=1)
        assert transformed.weights_hash() != small_resnet.weights_hash()

    def test_verify_detects_broken_transform(self, small_resnet):
        broken = small_resnet.copy()
        name = next(k for k in broken.initializers if k.endswith(".w"))
        broken.initializers[name] = broken.initializers[name] * 1.5
        with pytest.raises(TransformError, match="equivalence"):
            verify_equivalent(small_resnet, broken, trials=1)

    def test_registry_lists_all(self):
        assert len(available_transforms()) >= 8


class TestVariantSpec:
    def test_json_roundtrip(self):
        spec = VariantSpec(
            variant_id="p0-v1-xyz",
            partition_index=0,
            runtime=RuntimeConfig(engine="compiled", executor="vm"),
            graph_transforms=("commute-add",),
            tee_type=TeeType.TDX,
            system_measures=("aslr",),
        )
        assert VariantSpec.from_json(spec.to_json()) == spec

    def test_identity_differs_by_any_field(self):
        base = VariantSpec(variant_id="v", partition_index=0)
        assert base.identity() != VariantSpec(variant_id="v2", partition_index=0).identity()
        assert (
            base.identity()
            != VariantSpec(variant_id="v", partition_index=0, graph_transforms=("commute-add",)).identity()
        )

    def test_summary_mentions_levels(self):
        spec = VariantSpec(
            variant_id="v",
            partition_index=0,
            graph_transforms=("channel-shuffle",),
            system_measures=("asan",),
        )
        text = spec.diversification_summary()
        assert "channel-shuffle" in text and "asan" in text


class TestPool:
    def test_build_and_select(self, partitioned):
        specs = [s for p in range(3) for s in diversified_specs(p, 3, seed=0)]
        pool = build_pool(partitioned, specs, verify=False)
        assert pool.total_variants() == 9
        chosen = pool.select(1, 2)
        assert len(chosen) == 2

    def test_random_selection_seeded(self, partitioned):
        specs = [s for s in diversified_specs(0, 4, seed=0)] + [
            s for p in (1, 2) for s in diversified_specs(p, 1, seed=0)
        ]
        pool = build_pool(partitioned, specs, verify=False)
        a = [x.variant_id for x in pool.select(0, 2, seed=7)]
        b = [x.variant_id for x in pool.select(0, 2, seed=7)]
        assert a == b

    def test_overdraw_rejected(self, partitioned):
        pool = build_pool(partitioned, diversified_specs(0, 1, seed=0) +
                          [s for p in (1, 2) for s in diversified_specs(p, 1, seed=0)],
                          verify=False)
        with pytest.raises(ValueError, match="pool has"):
            pool.select(0, 5)

    def test_bad_partition_index_rejected(self, partitioned):
        spec = VariantSpec(variant_id="v", partition_index=99)
        with pytest.raises(ValueError, match="targets partition"):
            build_pool(partitioned, [spec], verify=False)

    def test_sealed_files_decrypt_with_variant_key(self, partitioned):
        specs = [s for p in range(3) for s in diversified_specs(p, 1, seed=0)]
        pool = build_pool(partitioned, specs, verify=False)
        artifact = pool.for_partition(0)[0]
        blob = SealedBlob.from_bytes(artifact.host_files[artifact.paths["config"]])
        plain = unseal_bytes(artifact.key_record.key, artifact.key_record.key_id, blob)
        assert json.loads(plain)["variant_id"] == artifact.variant_id

    def test_transformed_variant_equivalent_to_subgraph(self, partitioned):
        specs = [
            VariantSpec(
                variant_id="t0",
                partition_index=0,
                graph_transforms=("commute-add",),
            )
        ] + [s for p in (1, 2) for s in diversified_specs(p, 1, seed=0)]
        pool = build_pool(partitioned, specs, verify=True)  # verify must pass
        assert pool.total_variants() == 3

    def test_variant_zero_is_reference(self):
        specs = diversified_specs(2, 3, seed=0)
        assert specs[0].graph_transforms == ()
        assert specs[0].runtime.engine == "interpreter"


class TestManifests:
    def test_init_manifest_public_and_two_stage(self):
        spec = VariantSpec(variant_id="v7", partition_index=1)
        init_m, second_m = variant_manifests(spec)
        assert init_m.two_stage
        assert not second_m.two_stage
        paths = variant_paths(spec)
        assert paths["init"] in init_m.trusted_files
        assert paths["stage2_manifest"] in init_m.encrypted_files

    def test_second_stage_blocks_env(self):
        _, second_m = variant_manifests(VariantSpec(variant_id="v", partition_index=0))
        assert not second_m.env_allowlist  # §6.5: block all host env

    def test_second_stage_restricts_syscalls(self):
        init_m, second_m = variant_manifests(VariantSpec(variant_id="v", partition_index=0))
        assert "exec" in init_m.syscalls
        assert "exec" not in second_m.syscalls
        assert "open" not in second_m.syscalls

    def test_bootstrap_script_mentions_steps(self):
        spec = VariantSpec(variant_id="v", partition_index=0)
        script = bootstrap_script(spec)
        for step in ("attest", "install-key", "install-manifest", "exec"):
            assert step in script

    def test_init_code_is_shared(self):
        a, _ = variant_manifests(VariantSpec(variant_id="a", partition_index=0))
        b, _ = variant_manifests(VariantSpec(variant_id="b", partition_index=1))
        assert list(a.trusted_files.values()) == list(b.trusted_files.values())
        assert INIT_VARIANT_CODE
