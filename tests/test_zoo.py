"""Model zoo: registry, topology sanity, relative compute ordering."""

import numpy as np
import pytest

from repro.graph.flops import graph_flops
from repro.runtime import RuntimeConfig
from repro.runtime.interpreter import InterpreterRuntime
from repro.zoo import available_models, build_model
from repro.zoo.registry import EVALUATION_MODELS


class TestRegistry:
    def test_all_evaluation_models_registered(self):
        assert set(EVALUATION_MODELS) <= set(available_models())

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("alexnet-2")

    def test_seeded_reproducibility(self):
        a = build_model("tiny-cnn", seed=3)
        b = build_model("tiny-cnn", seed=3)
        assert a.weights_hash() == b.weights_hash()


@pytest.mark.parametrize("name", EVALUATION_MODELS)
class TestEvaluationModels:
    def test_builds_and_validates(self, name):
        model = build_model(name, input_size=96)
        model.validate()
        assert len(model.nodes) > 50

    def test_classifier_output_shape(self, name):
        model = build_model(name, input_size=96, num_classes=10)
        assert model.outputs[0].shape == (1, 10)


class TestComputeOrdering:
    def test_flop_ordering_matches_published(self):
        flops = {
            name: graph_flops(build_model(name, input_size=96))
            for name in ("mobilenet-v3", "mnasnet", "googlenet", "resnet-50", "resnet-152")
        }
        assert flops["mobilenet-v3"] < flops["mnasnet"] < flops["googlenet"]
        assert flops["googlenet"] < flops["resnet-50"] < flops["resnet-152"]

    def test_resnet152_deeper_than_resnet50(self):
        assert len(build_model("resnet-152", input_size=96).nodes) > len(
            build_model("resnet-50", input_size=96).nodes
        )


class TestExecutableSmall:
    @pytest.mark.parametrize("name", ["tiny-cnn", "tiny-mlp", "small-resnet"])
    def test_runs_and_outputs_distribution(self, name):
        model = build_model(name)
        runtime = InterpreterRuntime(RuntimeConfig())
        runtime.prepare(model)
        rng = np.random.default_rng(0)
        feeds = {
            s.name: rng.normal(size=s.shape).astype(np.float32) for s in model.inputs
        }
        out = list(runtime.run(feeds).values())[0]
        assert np.isclose(out.sum(), 1.0, atol=1e-4)  # softmax head
        assert np.all(out >= 0)

    def test_mobilenet_small_input_executes(self):
        # One real execution of a production topology at reduced size.
        model = build_model("mobilenet-v3", input_size=32, num_classes=10)
        runtime = InterpreterRuntime(RuntimeConfig())
        runtime.prepare(model)
        x = np.random.default_rng(0).normal(size=(1, 3, 32, 32)).astype(np.float32)
        out = list(runtime.run({"input": x}).values())[0]
        assert out.shape == (1, 10)
        assert np.isfinite(out).all()
